"""Chaos engine and scenario tests: every registered scenario must
inject, clear, converge with finite MTTR, and show up in the incident
timeline."""

import pytest

from repro.chaos import (
    ChaosScenario,
    Fault,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: The acceptance list from the issue: every one must finish with
#: invariants restored and a finite MTTR.
ACCEPTANCE_SCENARIOS = (
    "job-store-outage",
    "syncer-crash",
    "shard-manager-outage",
    "task-service-staleness",
    "metric-gap",
    "scribe-partition-loss",
    # Replicated control plane (run on a 3-replica Job Store group;
    # deep assertions live in tests/chaos/test_replication_scenarios.py)
    "leader-crash-mid-plan",
    "follower-lag-snapshot-catchup",
    # Data-plane resiliency (deep assertions live in
    # tests/chaos/test_resiliency_scenarios.py)
    "checkpoint-restore-vs-cold-restart",
    "standby-takeover",
    "gray-node-drain",
)


def test_registry_contents():
    assert set(scenario_names()) == set(ACCEPTANCE_SCENARIOS)
    for name, scenario in all_scenarios().items():
        assert scenario.name == name
        assert scenario.description
        assert scenario.measured_faults(), (
            f"{name} measures no fault, so it cannot report MTTR"
        )


def test_unknown_scenario_rejected():
    with pytest.raises(KeyError):
        get_scenario("nope")


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("not-a-kind", at=0.0)
    with pytest.raises(ValueError):
        Fault("job-store-outage", at=-1.0)
    with pytest.raises(ValueError):
        Fault("job-store-outage", at=0.0, duration=0.0)


@pytest.mark.parametrize("name", ACCEPTANCE_SCENARIOS)
def test_scenario_converges_with_finite_mttr(name):
    result = run_scenario(name, seed=7)
    assert result.converged, (
        f"{name} did not converge: "
        f"{result.final_report and result.final_report.violations()}"
    )
    assert result.mttr, f"{name} measured nothing"
    for key, value in result.mttr.items():
        assert value is not None, f"{key} never recovered"
        assert 0.0 <= value < 900.0
    assert result.max_mttr is not None


def test_chaos_records_reach_the_timeline():
    result = run_scenario("job-store-outage", seed=7)
    assert "chaos" in result.timeline_text
    assert "inject" in result.timeline_text
    assert "job-store-outage@45s" in result.timeline_text
    assert "converged" in result.timeline_text
    # The oncall stimulus is recorded as an action, not a fault window.
    assert "oncall-patch:chaos/job-0@40s" in result.timeline_text


def test_syncer_crash_recovers_via_full_scan():
    """The crash loses the dirty set; restart's anti-entropy full scan
    must still find and apply the patch committed during the outage."""
    result = run_scenario("syncer-crash", seed=7)
    assert result.converged
    assert result.mttr["syncer-crash@30s"] is not None


def test_shard_manager_outage_keeps_tasks_and_fails_over_late():
    """Paper IV-C: managers keep shards through the outage; the host
    that died mid-outage is only detected (and failed over) after the
    Shard Manager returns."""
    result = run_scenario("shard-manager-outage", seed=7)
    assert result.converged
    lines = result.timeline_text.splitlines()
    fail_time = next(
        float(line.split()[0]) for line in lines
        if "host-fail" in line and "host-1" in line
    )
    failover_times = [
        float(line.split()[0]) for line in lines
        if "failover" in line and "shard-manager" in line.split()[1]
    ]
    assert failover_times, "no failover after the Shard Manager returned"
    # Failover cannot happen while the Shard Manager is down (outage
    # clears 420 s after injection, i.e. 330 s after the host died).
    assert min(failover_times) >= fail_time + 300.0


def test_data_plane_scenarios_recover_instantly():
    """Metric and Scribe faults never break control-plane invariants, so
    the first post-clear sample already converges (MTTR 0) — the finding
    the scenario exists to demonstrate."""
    for name in ("metric-gap", "scribe-partition-loss"):
        result = run_scenario(name, seed=7)
        assert result.max_mttr == 0.0, (name, result.mttr)


def test_metric_gap_actually_drops_samples():
    result = run_scenario("metric-gap", seed=7)
    assert "chaos.faults_injected" in result.telemetry_jsonl
    # dropped_points is platform state, not exported; re-check via a
    # fresh run with direct access.
    from repro.chaos import build_platform, get_scenario as get

    platform = build_platform(seed=7)
    platform.run_for(seconds=300.0)
    platform.chaos.schedule(get("metric-gap"))
    platform.run_for(seconds=400.0)
    assert platform.metrics.dropped_points > 0


def test_scribe_loss_builds_then_drains_lag():
    from repro.chaos import build_platform

    platform = build_platform(seed=7)
    platform.run_for(seconds=300.0)
    platform.chaos.schedule(get_scenario("scribe-partition-loss"))
    platform.run_for(seconds=300.0)   # mid-outage (30..330)
    mid_lag = platform.job_lag_mb("chaos/job-0")
    assert mid_lag > 0.0, "offline partitions should stall consumers"
    platform.run_for(seconds=660.0)
    assert platform.job_lag_mb("chaos/job-0") < mid_lag


def test_inline_scenario_and_relative_scheduling():
    """Scenarios are relative to schedule time, so the same scenario can
    be scheduled twice in one run."""
    from repro.chaos import build_platform

    scenario = ChaosScenario(
        name="inline-store-blip",
        description="two short store blips",
        faults=(Fault("job-store-outage", at=10.0, duration=60.0),),
        horizon=400.0,
    )
    platform = build_platform(seed=3)
    platform.run_for(seconds=300.0)
    platform.chaos.schedule(scenario)
    platform.run_for(seconds=400.0)
    platform.chaos.schedule(scenario)
    platform.run_for(seconds=400.0)
    kinds = [(r.kind, r.time) for r in platform.chaos.records
             if r.kind in ("inject", "clear")]
    assert [k for k, __ in kinds] == ["inject", "clear", "inject", "clear"]
    assert kinds[2][1] == kinds[0][1] + 400.0


def test_telemetry_counts_resilience_edges():
    """Acceptance: retry/breaker counters are visible in Telemetry."""
    result = run_scenario("job-store-outage", seed=7)
    assert "resilience.syncer.job-store." in result.telemetry_jsonl
    assert "syncer.rounds_skipped" in result.telemetry_jsonl
    assert "chaos.mttr_seconds" in result.telemetry_jsonl
