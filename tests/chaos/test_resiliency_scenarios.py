"""Data-plane resiliency proof suite: the three recovery chaos scenarios.

The acceptance bar from the issue: ``standby-takeover`` promotes a warm
replica in under 5 s while the cold-restart control arm pays at least
the 40 s reboot clock, with an exactly-once promotion audit decoded from
the durable promotion log; ``checkpoint-restore-vs-cold-restart`` shows
recovery cost O(since-last-checkpoint) against the control's O(backlog);
``gray-node-drain`` drains exactly the slow host and recovers the job's
backlog hundreds of seconds before the undetected control arm. Golden
MTTRs and timeline-shape assertions freeze each trajectory per seed.
"""

import json

import pytest

from repro.chaos import build_platform, get_scenario, run_scenario
from repro.tasks.standby import PROMOTION_LOG

#: The paper's single-instance recovery budget hot standbys must beat.
REBOOT_CLOCK_SECONDS = 40.0

SEEDS = [101, 202, 303]

#: Control arm: the same fault with every resiliency feature forced off.
CONTROL = {
    "durable_checkpoints": False,
    "hot_standby": False,
    "slow_node_detection": False,
}


# ----------------------------------------------------------------------
# standby-takeover
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_standby_takeover_golden_mttr_beats_heartbeat(seed):
    """Promotion lands on the next 1 s plane tick: MTTR 1 s, two orders
    of magnitude under the reboot clock, and inside the scenario's 5 s
    acceptance bound — identically across seeds."""
    result = run_scenario("standby-takeover", seed=seed)
    assert result.converged, (
        result.final_report and result.final_report.violations()
    )
    assert result.mttr == {"host-failure:task-of:chaos/job-0:0@55s": 1.0}
    assert result.max_mttr < get_scenario("standby-takeover").expected_max_mttr
    assert result.max_mttr < REBOOT_CLOCK_SECONDS


def test_standby_takeover_control_arm_pays_the_reboot_clock():
    """Without standbys the same host loss waits out the 40 s connection
    timeout before tasks even begin restarting: 55 s end to end."""
    result = run_scenario("standby-takeover", seed=101, **CONTROL)
    assert result.converged
    assert result.mttr == {"host-failure:task-of:chaos/job-0:0@55s": 55.0}
    assert result.max_mttr >= REBOOT_CLOCK_SECONDS


@pytest.mark.parametrize("seed", SEEDS)
def test_standby_takeover_exactly_once_promotion_audit(seed):
    """No-dup/no-loss: decode the durable promotion log and prove every
    task that lost its primary was promoted exactly once, the targeted
    task among them, and the final state runs every spec exactly once."""
    platform = build_platform(seed=seed, hot_standby=True)
    platform.run_for(seconds=300.0)
    scenario = get_scenario("standby-takeover")
    platform.chaos.schedule(scenario)
    platform.run_for(seconds=scenario.horizon)

    records = [
        json.loads(payload)
        for __, payload in platform.scribe.logs[PROMOTION_LOG].read_from(0)
    ]
    assert records, "the takeover must leave a durable audit trail"
    assert all(record["op"] == "promote" for record in records)
    promoted = [record["task"] for record in records]
    # Exactly once: the host death promotes each orphaned task's replica
    # a single time — no duplicate promotions anywhere in the drill.
    assert len(promoted) == len(set(promoted))
    # No loss: the task whose host the fault killed is among them.
    assert "chaos/job-0:0" in promoted
    # The in-memory record agrees with the durable log byte-for-byte
    # ordering, and every takeover beat one plane tick per task.
    assert [p.task_id for p in platform.standby.promotions] == promoted
    assert all(
        record["at"] == promotion.time
        for record, promotion in zip(records, platform.standby.promotions)
    )
    # The handoff half of exactly-once: after the control plane restarts
    # real primaries, no promoted replica may coexist with one.
    report = platform.chaos.check()
    assert report.converged, report.violations()
    assert report.promoting == []
    assert report.duplicates == []
    assert report.orphans == []
    assert report.missing == []


def test_standby_takeover_timeline_tells_the_promotion_story():
    result = run_scenario("standby-takeover", seed=101)
    timeline = result.timeline_text
    for needle in ("host-failure", "standby-promote", "standby-handoff"):
        assert needle in timeline, f"missing {needle!r}"
    # Promotion happens one plane tick after the t=355 s host death.
    assert "356.0" in timeline
    assert "1s after primary loss" in timeline


# ----------------------------------------------------------------------
# checkpoint-restore-vs-cold-restart
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_checkpoint_restore_golden_mttr(seed):
    """With the plane attached, a cursor wipe costs only the progress
    since the last 30 s snapshot: the backlog watch closes 25 s after
    injection, inside the scenario's 90 s bound."""
    result = run_scenario("checkpoint-restore-vs-cold-restart", seed=seed)
    assert result.converged, (
        result.final_report and result.final_report.violations()
    )
    assert result.mttr == {"checkpoint-wipe:chaos/job-0@75s": 25.0}
    assert result.max_mttr < get_scenario(
        "checkpoint-restore-vs-cold-restart"
    ).expected_max_mttr


def test_checkpoint_restore_control_arm_pays_the_full_backlog():
    """Without durable checkpoints the wiped job re-reads its entire
    retained backlog: recovery is O(backlog) — 315 s against the
    durable arm's 25 s."""
    result = run_scenario(
        "checkpoint-restore-vs-cold-restart", seed=101, **CONTROL
    )
    assert result.converged
    assert result.mttr == {"checkpoint-wipe:chaos/job-0@75s": 315.0}


def test_checkpoint_restore_timeline_shows_the_roll_forward():
    result = run_scenario("checkpoint-restore-vs-cold-restart", seed=101)
    timeline = result.timeline_text
    assert "checkpoint-wipe" in timeline
    assert "checkpoint-restore" in timeline
    assert "rolled" in timeline and "partitions forward" in timeline
    # The wipe lands at t=375 s (off the 30 s snapshot grid); the next
    # plane tick at t=390 s performs the roll-forward.
    assert "375.0" in timeline
    assert "390.0" in timeline


# ----------------------------------------------------------------------
# gray-node-drain
# ----------------------------------------------------------------------
def test_gray_node_drain_converges_with_zero_mttr_both_arms():
    """The convergence watch closes immediately on both arms: a gray
    node never breaks an *ownership* invariant — that is precisely why
    health checks miss it. The arms differ in the lag trajectory and
    SLO burn (asserted below), not in MTTR."""
    detect = run_scenario("gray-node-drain", seed=101)
    control = run_scenario("gray-node-drain", seed=101, **CONTROL)
    assert detect.converged and control.converged
    assert detect.mttr == {"slow-node:task-of:chaos/job-0:0@60s": 0.0}
    assert control.mttr == detect.mttr


@pytest.mark.parametrize("seed", SEEDS)
def test_gray_node_drain_drains_exactly_the_slow_host(seed):
    platform = build_platform(seed=seed, slow_node_detection=True)
    platform.run_for(seconds=300.0)
    scenario = get_scenario("gray-node-drain")
    platform.chaos.schedule(scenario)
    platform.run_for(seconds=scenario.horizon)

    detector = platform.slow_nodes
    assert detector.drains == 1, "one gray host, one drain"
    kinds = [event.kind for event in detector.events]
    assert kinds == ["gray-node-drain", "gray-node-undrain"]
    drain, undrain = list(detector.events)
    # Two confirmation windows after the t=360 s injection: drained at
    # t=480 s; the 600 s cooldown returns the host at t=1080 s.
    assert drain.time == 480.0
    assert undrain.time == 1080.0
    # The drained host is the one actually running the targeted task.
    slow_host = drain.detail.split(":")[0]
    assert undrain.detail.startswith(slow_host)
    assert "vs job median" in drain.detail
    # After the cooldown nothing stays administratively out of the pool.
    assert detector.drained == {}
    assert platform.shard_manager.drained == set()


def test_gray_node_drain_recovers_the_lag_control_cannot():
    """The feature's value, quantified: draining the gray host lets the
    job burn strictly less lag error budget than the undetected control
    arm, which crawls at 0.1x until the fault clears on its own."""
    detect = run_scenario("gray-node-drain", seed=101)
    control = run_scenario("gray-node-drain", seed=101, **CONTROL)
    burned_detect = detect.budget_burned["chaos/job-0/lag"]
    burned_control = control.budget_burned["chaos/job-0/lag"]
    assert burned_detect < burned_control
    # The drain needle is the detector's event detail, not the scenario
    # name (which labels the injection line on both arms).
    assert "shards migrated off" in detect.timeline_text
    assert "shards migrated off" not in control.timeline_text
