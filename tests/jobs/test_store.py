"""Tests for the Job Store: versioned tables and durability snapshots."""

import pytest

from repro.errors import JobStoreError, VersionConflictError
from repro.jobs import ConfigLevel, JobStore
from repro.types import JobState


def store_with_job(job_id="job"):
    store = JobStore()
    store.create_job(job_id)
    return store


class TestLifecycle:
    def test_create_and_list(self):
        store = JobStore()
        store.create_job("b")
        store.create_job("a")
        assert store.job_ids() == ["a", "b"]
        assert store.exists("a")

    def test_duplicate_create_rejected(self):
        store = store_with_job()
        with pytest.raises(JobStoreError):
            store.create_job("job")

    def test_new_job_is_running_state(self):
        store = store_with_job()
        assert store.state_of("job") == JobState.RUNNING

    def test_delete_remembers_state(self):
        store = store_with_job()
        store.delete_job("job")
        assert not store.exists("job")
        assert store.state_of("job") == JobState.DELETED

    def test_unknown_job_rejected(self):
        store = JobStore()
        with pytest.raises(JobStoreError):
            store.read_expected("nope", ConfigLevel.BASE)
        with pytest.raises(JobStoreError):
            store.state_of("nope")


class TestExpectedConfigs:
    def test_initial_version_zero_empty(self):
        store = store_with_job()
        vc = store.read_expected("job", ConfigLevel.SCALER)
        assert vc.config == {}
        assert vc.version == 0

    def test_cas_write_succeeds_on_matching_version(self):
        store = store_with_job()
        new_version = store.write_expected(
            "job", ConfigLevel.SCALER, {"task_count": 5}, expected_version=0
        )
        assert new_version == 1
        assert store.read_expected("job", ConfigLevel.SCALER).config == {
            "task_count": 5
        }

    def test_cas_write_rejects_stale_version(self):
        """Read-modify-write consistency (paper section III-A)."""
        store = store_with_job()
        store.write_expected("job", ConfigLevel.ONCALL, {"a": 1}, 0)
        with pytest.raises(VersionConflictError):
            store.write_expected("job", ConfigLevel.ONCALL, {"a": 2}, 0)

    def test_levels_versioned_independently(self):
        store = store_with_job()
        store.write_expected("job", ConfigLevel.SCALER, {"a": 1}, 0)
        # Oncall level still at version 0.
        store.write_expected("job", ConfigLevel.ONCALL, {"b": 2}, 0)

    def test_read_returns_copy(self):
        store = store_with_job()
        store.write_expected("job", ConfigLevel.BASE, {"a": 1}, 0)
        vc = store.read_expected("job", ConfigLevel.BASE)
        vc.config["a"] = 999
        assert store.read_expected("job", ConfigLevel.BASE).config["a"] == 1

    def test_merged_expected_applies_precedence(self):
        store = store_with_job()
        store.write_expected("job", ConfigLevel.BASE, {"task_count": 1}, 0)
        store.write_expected("job", ConfigLevel.PROVISIONER, {"task_count": 10}, 0)
        store.write_expected("job", ConfigLevel.SCALER, {"task_count": 15}, 0)
        assert store.merged_expected("job")["task_count"] == 15
        store.write_expected("job", ConfigLevel.ONCALL, {"task_count": 30}, 0)
        assert store.merged_expected("job")["task_count"] == 30

    def test_invalid_config_rejected(self):
        store = store_with_job()
        with pytest.raises(JobStoreError):
            store.write_expected("job", ConfigLevel.BASE, {"x": object()}, 0)


class TestRunningConfig:
    def test_initially_empty(self):
        store = store_with_job()
        assert store.read_running("job").config == {}

    def test_commit_bumps_version(self):
        store = store_with_job()
        assert store.commit_running("job", {"task_count": 3}) == 1
        assert store.commit_running("job", {"task_count": 4}) == 2
        assert store.read_running("job").config == {"task_count": 4}

    def test_running_read_is_copy(self):
        store = store_with_job()
        store.commit_running("job", {"a": 1})
        vc = store.read_running("job")
        vc.config["a"] = 2
        assert store.read_running("job").config["a"] == 1


class TestSnapshots:
    def test_round_trip_preserves_everything(self):
        store = store_with_job("job-a")
        store.create_job("job-b")
        store.write_expected("job-a", ConfigLevel.SCALER, {"task_count": 8}, 0)
        store.commit_running("job-a", {"task_count": 8})
        store.set_state("job-b", JobState.QUARANTINED)

        restored = JobStore.load_snapshot(store.dump_snapshot())
        assert restored.job_ids() == ["job-a", "job-b"]
        assert restored.read_expected("job-a", ConfigLevel.SCALER).version == 1
        assert restored.read_running("job-a").config == {"task_count": 8}
        assert restored.state_of("job-b") == JobState.QUARANTINED

    def test_file_round_trip(self, tmp_path):
        store = store_with_job()
        store.write_expected("job", ConfigLevel.SCALER, {"task_count": 8}, 0)
        store.commit_running("job", {"task_count": 8})
        path = tmp_path / "jobstore.json"
        store.save(path)
        restored = JobStore.load(path)
        assert restored.dump_snapshot() == store.dump_snapshot()

    def test_snapshot_versions_preserved(self):
        """Durability: versions survive a restart, so CAS semantics hold
        across crashes."""
        store = store_with_job()
        store.write_expected("job", ConfigLevel.ONCALL, {"a": 1}, 0)
        restored = JobStore.load_snapshot(store.dump_snapshot())
        with pytest.raises(VersionConflictError):
            restored.write_expected("job", ConfigLevel.ONCALL, {"a": 2}, 0)
        restored.write_expected("job", ConfigLevel.ONCALL, {"a": 2}, 1)
