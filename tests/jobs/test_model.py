"""Tests for JobSpec and canonical config keys."""

import pytest

from repro.cluster import ResourceVector
from repro.errors import JobStoreError
from repro.jobs import JobSpec
from repro.jobs.model import (
    DEFAULT_TASK_COUNT_LIMIT,
    KEY_INPUT,
    KEY_PACKAGE,
    KEY_RESOURCES,
    KEY_SLO,
    KEY_STATE_KEY_CARDINALITY,
    KEY_STATEFUL,
    KEY_TASK_COUNT,
    KEY_TASK_COUNT_LIMIT,
    base_config,
)
from repro.jobs.configs import validate_config
from repro.types import SLO, Priority


def test_minimal_spec_defaults():
    spec = JobSpec(job_id="scuba/ads", input_category="ads")
    assert spec.task_count == 1
    assert spec.task_count_limit == DEFAULT_TASK_COUNT_LIMIT
    assert spec.priority == Priority.NORMAL
    assert not spec.stateful


def test_config_round_trip_keys():
    spec = JobSpec(
        job_id="scuba/ads",
        input_category="ads",
        task_count=4,
        resources_per_task=ResourceVector(cpu=1.0, memory_gb=2.0),
    )
    config = spec.to_provisioner_config()
    assert config[KEY_TASK_COUNT] == 4
    assert config[KEY_INPUT] == {"category": "ads"}
    assert config[KEY_RESOURCES]["cpu"] == 1.0
    assert config[KEY_PACKAGE]["name"] == "stream_engine"
    assert config[KEY_SLO]["max_lag_seconds"] == 90.0
    validate_config(config)  # must be JSON-clean


def test_stateful_spec_includes_cardinality():
    spec = JobSpec(
        job_id="agg", input_category="in", stateful=True,
        state_key_cardinality=1_000_000,
    )
    config = spec.to_provisioner_config()
    assert config[KEY_STATEFUL] is True
    assert config[KEY_STATE_KEY_CARDINALITY] == 1_000_000


def test_stateless_spec_omits_cardinality():
    config = JobSpec(job_id="j", input_category="c").to_provisioner_config()
    assert KEY_STATE_KEY_CARDINALITY not in config


def test_output_category_optional():
    with_out = JobSpec(job_id="j", input_category="c", output_category="o",
                       output_ratio=0.5)
    assert with_out.to_provisioner_config()["output"] == {
        "category": "o", "ratio": 0.5,
    }
    without = JobSpec(job_id="j", input_category="c")
    assert "output" not in without.to_provisioner_config()


def test_custom_slo():
    spec = JobSpec(
        job_id="j", input_category="c",
        slo=SLO(max_lag_seconds=30.0, recovery_seconds=600.0),
    )
    config = spec.to_provisioner_config()
    assert config[KEY_SLO] == {"max_lag_seconds": 30.0, "recovery_seconds": 600.0}


def test_invalid_specs_rejected():
    with pytest.raises(JobStoreError):
        JobSpec(job_id="", input_category="c")
    with pytest.raises(JobStoreError):
        JobSpec(job_id="j", input_category="c", task_count=0)
    with pytest.raises(JobStoreError):
        JobSpec(job_id="j", input_category="c", threads_per_task=0)
    with pytest.raises(JobStoreError):
        JobSpec(job_id="j", input_category="c", task_count_limit=0)


def test_invalid_slo_rejected():
    with pytest.raises(ValueError):
        SLO(max_lag_seconds=0.0)
    with pytest.raises(ValueError):
        SLO(recovery_seconds=-1.0)


def test_base_config_is_valid_and_has_defaults():
    config = base_config()
    validate_config(config)
    assert config[KEY_TASK_COUNT_LIMIT] == DEFAULT_TASK_COUNT_LIMIT
    assert config[KEY_SLO]["max_lag_seconds"] == 90.0
