"""Hypothesis state machine for the Job Store's CAS semantics.

Random interleavings of reads, CAS writes (fresh and stale), commits, and
snapshot round-trips must preserve:

* a stale-version write NEVER lands (isolation);
* the stored config is always the last successfully-written one;
* versions are strictly monotone per level;
* a snapshot round-trip is an identity.
"""

import json

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import VersionConflictError
from repro.jobs import ConfigLevel, JobStore

LEVELS = list(ConfigLevel)
JOBS = ["job-a", "job-b"]


class JobStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = JobStore()
        #: Our model: (job, level) -> (config, version).
        self.model = {}

    @initialize()
    def create_jobs(self):
        for job_id in JOBS:
            self.store.create_job(job_id)
            for level in LEVELS:
                self.model[(job_id, level)] = ({}, 0)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(
        job=st.sampled_from(JOBS),
        level=st.sampled_from(LEVELS),
        value=st.integers(0, 100),
    )
    def fresh_write_lands(self, job, level, value):
        config, version = self.model[(job, level)]
        new_config = {"task_count": value}
        new_version = self.store.write_expected(job, level, new_config, version)
        assert new_version == version + 1
        self.model[(job, level)] = (new_config, new_version)

    @rule(
        job=st.sampled_from(JOBS),
        level=st.sampled_from(LEVELS),
        stale_delta=st.integers(1, 3),
        value=st.integers(0, 100),
    )
    def stale_write_rejected(self, job, level, stale_delta, value):
        __, version = self.model[(job, level)]
        stale = version - stale_delta
        try:
            self.store.write_expected(job, level, {"task_count": value}, stale)
            raise AssertionError("stale write must not land")
        except VersionConflictError:
            pass

    @rule(job=st.sampled_from(JOBS), value=st.integers(0, 100))
    def commit_running(self, job, value):
        self.store.commit_running(job, {"task_count": value})

    @rule()
    def snapshot_round_trip(self):
        restored = JobStore.load_snapshot(self.store.dump_snapshot())
        assert restored.dump_snapshot() == self.store.dump_snapshot()
        self.store = restored  # keep operating on the restored store

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def stored_matches_model(self):
        if not self.model:
            return
        for (job, level), (config, version) in self.model.items():
            stored = self.store.read_expected(job, level)
            assert stored.config == config
            assert stored.version == version

    @invariant()
    def merged_respects_precedence(self):
        if not self.model:
            return
        for job in JOBS:
            merged = self.store.merged_expected(job)
            expected_value = None
            for level in ConfigLevel.in_precedence_order():
                config, __ = self.model[(job, level)]
                if "task_count" in config:
                    expected_value = config["task_count"]
            if expected_value is not None:
                assert merged["task_count"] == expected_value


TestJobStoreMachine = JobStoreMachine.TestCase
TestJobStoreMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
