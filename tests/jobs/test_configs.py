"""Tests for hierarchical configs and the Algorithm 1 merge."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import JobStoreError
from repro.jobs import ConfigLevel, layer_configs, merge_levels, validate_config
from repro.jobs.configs import config_diff, requires_complex_sync

# JSON-ish config strategy for property tests.
json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-100, 100), st.text(max_size=8)
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=10,
)
configs = st.dictionaries(st.text(min_size=1, max_size=5), json_values, max_size=5)


class TestLayerConfigs:
    def test_top_overrides_bottom_scalar(self):
        assert layer_configs({"a": 1}, {"a": 2}) == {"a": 2}

    def test_disjoint_keys_union(self):
        assert layer_configs({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}

    def test_nested_maps_merge_recursively(self):
        bottom = {"pkg": {"name": "engine", "version": "1.0"}, "tasks": 4}
        top = {"pkg": {"version": "2.0"}}
        merged = layer_configs(bottom, top)
        assert merged == {
            "pkg": {"name": "engine", "version": "2.0"},
            "tasks": 4,
        }

    def test_map_replaces_scalar(self):
        assert layer_configs({"a": 1}, {"a": {"b": 2}}) == {"a": {"b": 2}}

    def test_scalar_replaces_map(self):
        assert layer_configs({"a": {"b": 2}}, {"a": 1}) == {"a": 1}

    def test_lists_replace_wholesale(self):
        assert layer_configs({"a": [1, 2]}, {"a": [3]}) == {"a": [3]}

    def test_inputs_not_mutated(self):
        bottom = {"pkg": {"name": "engine"}}
        top = {"pkg": {"version": "2.0"}}
        layer_configs(bottom, top)
        assert bottom == {"pkg": {"name": "engine"}}
        assert top == {"pkg": {"version": "2.0"}}

    def test_result_does_not_alias_top_layer(self):
        top = {"pkg": {"version": "2.0"}}
        merged = layer_configs({}, top)
        merged["pkg"]["version"] = "3.0"
        assert top["pkg"]["version"] == "2.0"

    def test_empty_layers(self):
        assert layer_configs({}, {"a": 1}) == {"a": 1}
        assert layer_configs({"a": 1}, {}) == {"a": 1}

    @given(configs, configs)
    def test_top_layer_keys_always_win(self, bottom, top):
        merged = layer_configs(bottom, top)
        for key, top_value in top.items():
            if not isinstance(top_value, dict):
                assert merged[key] == top_value

    @given(configs)
    def test_identity_merge(self, config):
        assert layer_configs(config, config) == config

    @given(configs, configs, configs)
    def test_merge_is_associative(self, a, b, c):
        """Layering is associative, so "an arbitrary number of
        configurations" can be folded in any grouping (paper III-A)."""
        assert layer_configs(layer_configs(a, b), c) == layer_configs(
            a, layer_configs(b, c)
        )


class TestMergeLevels:
    def test_precedence_order(self):
        merged = merge_levels({
            ConfigLevel.BASE: {"task_count": 1, "pkg": "base"},
            ConfigLevel.PROVISIONER: {"task_count": 10},
            ConfigLevel.SCALER: {"task_count": 15},
            ConfigLevel.ONCALL: {"task_count": 30},
        })
        assert merged["task_count"] == 30, "oncall always wins"
        assert merged["pkg"] == "base"

    def test_scaler_overrides_provisioner(self):
        merged = merge_levels({
            ConfigLevel.PROVISIONER: {"task_count": 10},
            ConfigLevel.SCALER: {"task_count": 15},
        })
        assert merged["task_count"] == 15

    def test_missing_levels_skipped(self):
        assert merge_levels({ConfigLevel.ONCALL: {"a": 1}}) == {"a": 1}
        assert merge_levels({}) == {}

    def test_empty_level_does_not_mask(self):
        merged = merge_levels({
            ConfigLevel.PROVISIONER: {"task_count": 10},
            ConfigLevel.ONCALL: {},
        })
        assert merged["task_count"] == 10


class TestValidateConfig:
    def test_valid_config_passes(self):
        validate_config({"a": 1, "b": {"c": [1, 2, "x"], "d": None}})

    def test_non_serializable_rejected(self):
        with pytest.raises(JobStoreError):
            validate_config({"a": object()})

    def test_non_string_key_rejected(self):
        with pytest.raises(JobStoreError):
            validate_config({1: "x"})


class TestConfigDiff:
    def test_no_difference(self):
        assert config_diff({"a": 1}, {"a": 1}) == {}

    def test_changed_value(self):
        assert config_diff({"a": 1}, {"a": 2}) == {"a": 2}

    def test_new_key(self):
        assert config_diff({}, {"a": 1}) == {"a": 1}

    def test_removed_key_maps_to_none(self):
        assert config_diff({"a": 1}, {}) == {"a": None}

    def test_nested_change_detected(self):
        diff = config_diff({"pkg": {"v": "1"}}, {"pkg": {"v": "2"}})
        assert diff == {"pkg": {"v": "2"}}

    def test_complex_sync_detection(self):
        assert requires_complex_sync({"task_count": 5})
        assert not requires_complex_sync({"package": {"version": "2"}})
        assert not requires_complex_sync({})
