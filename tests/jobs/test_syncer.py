"""Tests for the State Syncer: ACIDF semantics, batching, quarantine."""

import pytest

from repro.errors import SyncError
from repro.jobs import (
    ConfigLevel,
    JobService,
    JobSpec,
    JobStore,
    StateSyncer,
)
from repro.sim import Engine
from repro.testing import RecordingActuator
from repro.types import JobState


def make_setup(task_count=4):
    store = JobStore()
    service = JobService(store)
    service.provision(
        JobSpec(job_id="job", input_category="cat", task_count=task_count)
    )
    actuator = RecordingActuator()
    syncer = StateSyncer(store, actuator)
    return store, service, actuator, syncer


class TestPlanSelection:
    def test_first_sync_is_complex(self):
        """Initial provisioning sets task_count from nothing — that is a
        parallelism change, so the first sync is a complex one."""
        store, service, actuator, syncer = make_setup()
        report = syncer.sync_once()
        assert report.complex_synced == ["job"]
        ops = [call[0] for call in actuator.calls]
        assert ops == ["stop_tasks", "redistribute_checkpoints", "start_tasks"]

    def test_no_difference_no_plan(self):
        store, service, actuator, syncer = make_setup()
        syncer.sync_once()
        actuator.calls.clear()
        report = syncer.sync_once()
        assert report.total_synced == 0
        assert actuator.calls == []

    def test_package_release_is_simple_sync(self):
        store, service, actuator, syncer = make_setup()
        syncer.sync_once()
        actuator.calls.clear()
        service.patch(
            "job", ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "2.0"}},
        )
        report = syncer.sync_once()
        assert report.simple_synced == ["job"]
        assert actuator.calls == [("apply_settings", "job")]

    def test_parallelism_change_is_complex_sync(self):
        store, service, actuator, syncer = make_setup(task_count=4)
        syncer.sync_once()
        actuator.calls.clear()
        service.patch("job", ConfigLevel.SCALER, {"task_count": 8})
        report = syncer.sync_once()
        assert report.complex_synced == ["job"]
        assert ("redistribute_checkpoints", "job", 4, 8) in actuator.calls
        # Phases in the paper's order: stop, redistribute, start.
        ops = [call[0] for call in actuator.calls]
        assert ops == ["stop_tasks", "redistribute_checkpoints", "start_tasks"]
        assert ("start_tasks", "job", 8) in actuator.calls


class TestAtomicity:
    def test_running_config_unchanged_on_failure(self):
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("start_tasks")
        report = syncer.sync_once()
        assert report.failed == ["job"]
        assert store.read_running("job").config == {}, (
            "commit must not happen when the plan fails part-way"
        )

    def test_commit_after_success(self):
        store, service, actuator, syncer = make_setup()
        syncer.sync_once()
        running = store.read_running("job").config
        assert running["task_count"] == 4


class TestFaultTolerance:
    def test_failed_plan_retried_next_round(self):
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("start_tasks")
        syncer.sync_once()
        actuator.fail_on.clear()
        report = syncer.sync_once()
        assert report.complex_synced == ["job"]
        assert store.read_running("job").config["task_count"] == 4

    def test_repeated_failures_quarantine_job(self):
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("stop_tasks")
        quarantined = []
        syncer.on_quarantine.append(lambda job_id, reason: quarantined.append(job_id))
        for __ in range(3):
            syncer.sync_once()
        assert store.state_of("job") == JobState.QUARANTINED
        assert quarantined == ["job"]
        assert len(syncer.alerts) == 1

    def test_quarantined_job_skipped(self):
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("stop_tasks")
        for __ in range(3):
            syncer.sync_once()
        actuator.calls.clear()
        report = syncer.sync_once()
        assert report.total_synced == 0
        assert actuator.calls == []

    def test_release_quarantine_resumes_sync(self):
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("stop_tasks")
        for __ in range(3):
            syncer.sync_once()
        actuator.fail_on.clear()
        syncer.release_quarantine("job")
        report = syncer.sync_once()
        assert report.complex_synced == ["job"]
        assert syncer.failure_count("job") == 0

    def test_release_non_quarantined_rejected(self):
        store, service, actuator, syncer = make_setup()
        with pytest.raises(SyncError):
            syncer.release_quarantine("job")

    def test_success_resets_failure_count(self):
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("stop_tasks")
        syncer.sync_once()
        syncer.sync_once()
        assert syncer.failure_count("job") == 2
        actuator.fail_on.clear()
        syncer.sync_once()
        assert syncer.failure_count("job") == 0


class TestTornPlanRecovery:
    def test_reverted_expected_still_resyncs_after_failure(self):
        """A plan that fails after stopping tasks leaves reality torn; if
        the expected config is then reverted to match the stale running
        config, the syncer must still resynchronize (dirty tracking)."""
        store, service, actuator, syncer = make_setup(task_count=4)
        syncer.sync_once()  # healthy initial state, running == expected

        # An update arrives and its plan fails *after* stop_tasks ran.
        service.patch("job", ConfigLevel.ONCALL, {"task_count": 8})
        actuator.fail_on.add("start_tasks")
        syncer.sync_once()
        assert store.is_dirty("job")
        stops_so_far = [c for c in actuator.calls if c[0] == "stop_tasks"]

        # The oncall reverts the update: expected == running again.
        actuator.fail_on.clear()
        service.clear_level("job", ConfigLevel.ONCALL)
        report = syncer.sync_once()
        assert report.complex_synced == ["job"], (
            "dirty job must fully resync despite zero config diff"
        )
        assert not store.is_dirty("job")
        restarts = [c for c in actuator.calls if c[0] == "start_tasks"]
        assert len(restarts) >= 1
        assert len([c for c in actuator.calls if c[0] == "stop_tasks"]) > len(
            stops_so_far
        )

    def test_dirty_survives_snapshot(self):
        store, service, actuator, syncer = make_setup()
        syncer.sync_once()
        service.patch("job", ConfigLevel.ONCALL, {"task_count": 8})
        actuator.fail_on.add("start_tasks")
        syncer.sync_once()
        restored = JobStore.load_snapshot(store.dump_snapshot())
        assert restored.is_dirty("job"), "dirtiness is durable state"

    def test_clean_job_not_marked_dirty(self):
        store, service, actuator, syncer = make_setup()
        syncer.sync_once()
        assert not store.is_dirty("job")


class TestDurability:
    def test_syncer_crash_and_restart_converges(self):
        """Durability: a brand-new syncer over the surviving store still
        drives running to expected."""
        store, service, actuator, syncer = make_setup()
        actuator.fail_on.add("start_tasks")
        syncer.sync_once()  # fails part-way; nothing committed
        # Syncer process dies; store survives (snapshot round-trip).
        restored = JobStore.load_snapshot(store.dump_snapshot())
        fresh_actuator = RecordingActuator()
        fresh_syncer = StateSyncer(restored, fresh_actuator)
        report = fresh_syncer.sync_once()
        assert report.complex_synced == ["job"]
        assert restored.read_running("job").config["task_count"] == 4


class TestPeriodicOperation:
    def test_runs_every_30_seconds(self):
        engine = Engine()
        store = JobStore()
        service = JobService(store)
        service.provision(JobSpec(job_id="job", input_category="cat"))
        actuator = RecordingActuator()
        syncer = StateSyncer(store, actuator, engine=engine)
        syncer.start()
        engine.run_until(95.0)
        assert len(syncer.rounds) == 3  # t=30, 60, 90

    def test_start_without_engine_rejected(self):
        store, service, actuator, syncer = make_setup()
        with pytest.raises(SyncError):
            syncer.start()

    def test_stop_halts_rounds(self):
        engine = Engine()
        store = JobStore()
        JobService(store).provision(JobSpec(job_id="job", input_category="cat"))
        syncer = StateSyncer(store, RecordingActuator(), engine=engine)
        syncer.start()
        engine.run_until(35.0)
        syncer.stop()
        engine.run_until(300.0)
        assert len(syncer.rounds) == 1


class TestBatching:
    def test_many_simple_syncs_in_one_round(self):
        """Simple synchronization of tens of thousands of jobs happens in
        one batched round (paper section III-B); here a smaller fleet
        checks the all-at-once behaviour."""
        store = JobStore()
        service = JobService(store)
        for index in range(200):
            service.provision(
                JobSpec(job_id=f"job-{index:03d}", input_category="cat")
            )
        actuator = RecordingActuator()
        syncer = StateSyncer(store, actuator)
        syncer.sync_once()  # initial complex syncs
        # A global package release touches every job.
        for job_id in service.job_ids():
            service.patch(
                job_id, ConfigLevel.PROVISIONER,
                {"package": {"name": "stream_engine", "version": "9.9"}},
            )
        report = syncer.sync_once()
        assert len(report.simple_synced) == 200
        assert report.complex_synced == []
