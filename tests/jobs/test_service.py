"""Tests for the Job Service: provisioning, CAS retry loop, isolation."""

import pytest

from repro.errors import DegradedModeError, JobStoreError
from repro.jobs import ConfigLevel, JobService, JobSpec, JobStore
from repro.types import JobState


def service_with_job(job_id="scuba/ads"):
    service = JobService(JobStore())
    service.provision(JobSpec(job_id=job_id, input_category="ads", task_count=10))
    return service


class TestProvisioning:
    def test_provision_writes_base_and_provisioner(self):
        service = service_with_job()
        merged = service.expected_config("scuba/ads")
        assert merged["task_count"] == 10
        assert merged["package"]["name"] == "stream_engine"

    def test_admission_control_degraded_mode(self):
        """Job Management degraded: keep jobs running, admit nothing new."""
        service = service_with_job()
        service.admitting = False
        with pytest.raises(DegradedModeError):
            service.provision(JobSpec(job_id="new", input_category="c"))
        # Existing jobs still readable and updatable.
        assert service.expected_config("scuba/ads")["task_count"] == 10
        service.patch("scuba/ads", ConfigLevel.ONCALL, {"task_count": 5})

    def test_deprovision(self):
        service = service_with_job()
        service.deprovision("scuba/ads")
        assert service.job_ids() == []


class TestUpdates:
    def test_patch_shallow_merges(self):
        service = service_with_job()
        service.patch("scuba/ads", ConfigLevel.SCALER, {"task_count": 15})
        assert service.expected_config("scuba/ads")["task_count"] == 15

    def test_scenario_from_paper_section_iii_a(self):
        """Scaler sets 15; two oncalls set 20 then 30. Oncall wins over
        scaler; the second oncall write serializes after the first."""
        service = service_with_job()
        service.patch("scuba/ads", ConfigLevel.SCALER, {"task_count": 15})
        service.patch("scuba/ads", ConfigLevel.ONCALL, {"task_count": 20})
        service.patch("scuba/ads", ConfigLevel.ONCALL, {"task_count": 30})
        assert service.expected_config("scuba/ads")["task_count"] == 30
        # A broken automation service keeps writing the scaler level…
        service.patch("scuba/ads", ConfigLevel.SCALER, {"task_count": 2})
        # …but cannot overwrite the oncall mitigation.
        assert service.expected_config("scuba/ads")["task_count"] == 30

    def test_clear_level_restores_lower_precedence(self):
        service = service_with_job()
        service.patch("scuba/ads", ConfigLevel.ONCALL, {"task_count": 99})
        service.clear_level("scuba/ads", ConfigLevel.ONCALL)
        assert service.expected_config("scuba/ads")["task_count"] == 10

    def test_update_retries_on_conflict(self):
        """A modify function racing with another writer still lands."""
        service = service_with_job()
        store = service.store
        raced = {"done": False}

        def racy_modify(config):
            # Simulate another writer sneaking in between read and write,
            # exactly once.
            if not raced["done"]:
                raced["done"] = True
                current = store.read_expected("scuba/ads", ConfigLevel.SCALER)
                store.write_expected(
                    "scuba/ads", ConfigLevel.SCALER,
                    {"task_count": 7}, current.version,
                )
            config["task_count"] = 15
            return config

        service.update("scuba/ads", ConfigLevel.SCALER, racy_modify)
        final = store.read_expected("scuba/ads", ConfigLevel.SCALER)
        assert final.config["task_count"] == 15
        assert final.version == 2  # racer's write + ours

    def test_update_gives_up_after_max_retries(self):
        service = service_with_job()
        store = service.store

        def always_race(config):
            current = store.read_expected("scuba/ads", ConfigLevel.SCALER)
            store.write_expected(
                "scuba/ads", ConfigLevel.SCALER, {"x": 1}, current.version
            )
            return config

        with pytest.raises(JobStoreError, match="retries"):
            service.update(
                "scuba/ads", ConfigLevel.SCALER, always_race, max_retries=3
            )

    def test_modify_returning_none_rejected(self):
        service = service_with_job()
        with pytest.raises(JobStoreError, match="None"):
            service.update("scuba/ads", ConfigLevel.SCALER, lambda config: None)


class TestReads:
    def test_running_config_initially_empty(self):
        service = service_with_job()
        assert service.running_config("scuba/ads") == {}

    def test_active_jobs_excludes_quarantined(self):
        service = service_with_job()
        service.store.set_state("scuba/ads", JobState.QUARANTINED)
        assert service.active_job_ids() == []
        assert service.job_ids() == ["scuba/ads"]
