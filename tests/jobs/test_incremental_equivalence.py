"""Property test: dirty-set incremental sync ≡ full-scan sync.

Two worlds run the *same* store mutations and the *same* pre-drawn
actuator failure schedule: world A syncs incrementally from the Job
Store's change feed (full scans effectively disabled), world B rescans
the whole fleet every round. After every round the two worlds must agree
on every report field that describes decisions (what synced, what
failed, what was quarantined) and on the stores' full contents; at the
end, after chaos stops, both must converge to identical running configs.

This is the safety argument for shipping the incremental path as the
default: any mutation the change feed missed would show up here as a
divergence between the worlds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs import ConfigLevel, JobService, JobSpec, JobStore, StateSyncer
from repro.testing import ChaoticActuator, NullActuator
from repro.types import JobState

NUM_JOBS = 3
#: Effectively "never full-scan" — forces the pure incremental path
#: (round 0 is always a full scan by design; see StateSyncer).
NO_FULL_SCANS = 10**9


def build_world(incremental, failure_plan, full_scan_interval=NO_FULL_SCANS):
    store = JobStore()
    service = JobService(store)
    actuator = ChaoticActuator(list(failure_plan))
    syncer = StateSyncer(
        store, actuator, quarantine_after=3,
        incremental=incremental, full_scan_interval=full_scan_interval,
    )
    for index in range(NUM_JOBS):
        service.provision(JobSpec(job_id=f"job-{index}", input_category="cat"))
    return store, service, actuator, syncer


def apply_op(op, store, service):
    """Apply one mutation; both worlds receive identical op streams."""
    kind = op[0]
    if kind == "patch":
        __, index, level, task_count = op
        job_id = f"job-{index}"
        if store.exists(job_id) and store.state_of(job_id) != JobState.QUARANTINED:
            service.patch(job_id, level, {"task_count": task_count})
    elif kind == "patch_simple":
        __, index, version = op
        job_id = f"job-{index}"
        if store.exists(job_id) and store.state_of(job_id) != JobState.QUARANTINED:
            service.patch(
                job_id, ConfigLevel.PROVISIONER,
                {"package": {"name": "engine", "version": f"v{version}"}},
            )
    elif kind == "bump":
        # External running-config invalidation (the Capacity Manager's
        # force-resync pattern) — must wake the incremental syncer too.
        __, index = op
        job_id = f"job-{index}"
        if store.exists(job_id):
            store.commit_running(job_id, {})
    elif kind == "deprovision":
        __, index = op
        job_id = f"job-{index}"
        if store.exists(job_id):
            service.deprovision(job_id)
    elif kind == "provision":
        __, index = op
        job_id = f"job-{index}"
        if not store.exists(job_id):
            service.provision(JobSpec(job_id=job_id, input_category="cat"))
    elif kind == "release":
        __, index = op
        job_id = f"job-{index}"
        if store.exists(job_id) and store.state_of(job_id) == JobState.QUARANTINED:
            return "release"
    return None


def semantic_fields(report):
    return (
        report.simple_synced,
        report.complex_synced,
        report.failed,
        report.quarantined,
    )


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("patch"),
            st.integers(0, NUM_JOBS - 1),
            st.sampled_from(
                [ConfigLevel.PROVISIONER, ConfigLevel.SCALER, ConfigLevel.ONCALL]
            ),
            st.integers(1, 12),
        ),
        st.tuples(
            st.just("patch_simple"),
            st.integers(0, NUM_JOBS - 1),
            st.integers(1, 9),
        ),
        st.tuples(st.just("bump"), st.integers(0, NUM_JOBS - 1)),
        st.tuples(st.just("deprovision"), st.integers(0, NUM_JOBS - 1)),
        st.tuples(st.just("provision"), st.integers(0, NUM_JOBS + 1)),
        st.tuples(st.just("release"), st.integers(0, NUM_JOBS - 1)),
    ),
    min_size=1,
    max_size=14,
)
failures = st.lists(st.booleans(), min_size=0, max_size=60)


@settings(max_examples=60, deadline=None)
@given(ops=operations, failure_plan=failures)
def test_incremental_equals_full_scan(ops, failure_plan):
    store_a, service_a, actuator_a, syncer_a = build_world(True, failure_plan)
    store_b, service_b, actuator_b, syncer_b = build_world(False, failure_plan)

    for op in ops:
        result_a = apply_op(op, store_a, service_a)
        result_b = apply_op(op, store_b, service_b)
        assert result_a == result_b  # both worlds saw the same guard state
        if result_a == "release":
            syncer_a.release_quarantine(f"job-{op[1]}")
            syncer_b.release_quarantine(f"job-{op[1]}")
        report_a = syncer_a.sync_once()
        report_b = syncer_b.sync_once()
        assert semantic_fields(report_a) == semantic_fields(report_b)
        assert store_a.dump_snapshot() == store_b.dump_snapshot()

    # Chaos over: both worlds must converge to the same fixed point.
    actuator_a.failing = False
    actuator_b.failing = False
    for __ in range(2):
        report_a = syncer_a.sync_once()
        report_b = syncer_b.sync_once()
        assert semantic_fields(report_a) == semantic_fields(report_b)
    assert store_a.dump_snapshot() == store_b.dump_snapshot()
    for job_id in store_a.job_ids():
        if store_a.state_of(job_id) == JobState.QUARANTINED:
            continue
        assert (
            store_a.read_running(job_id).config
            == store_a.merged_expected(job_id)
        )


@settings(max_examples=25, deadline=None)
@given(ops=operations, failure_plan=failures)
def test_periodic_full_scans_change_nothing(ops, failure_plan):
    """With the default safety-net interval, full scans interleave with
    incremental rounds — outcomes must still match the full-scan world."""
    store_a, service_a, actuator_a, syncer_a = build_world(
        True, failure_plan, full_scan_interval=2
    )
    store_b, service_b, actuator_b, syncer_b = build_world(False, failure_plan)

    for op in ops:
        result_a = apply_op(op, store_a, service_a)
        result_b = apply_op(op, store_b, service_b)
        assert result_a == result_b
        if result_a == "release":
            syncer_a.release_quarantine(f"job-{op[1]}")
            syncer_b.release_quarantine(f"job-{op[1]}")
        report_a = syncer_a.sync_once()
        report_b = syncer_b.sync_once()
        assert semantic_fields(report_a) == semantic_fields(report_b)
        assert store_a.dump_snapshot() == store_b.dump_snapshot()


class GCActuator(NullActuator):
    """Knows cluster-side jobs, so the syncer's GC sweep has work to do."""

    def __init__(self):
        self.cluster_jobs = set()
        self.fail_stops = 0

    def known_job_ids(self):
        return sorted(self.cluster_jobs)

    def start_tasks(self, job_id, count, config):
        self.cluster_jobs.add(job_id)

    def stop_tasks(self, job_id):
        if self.fail_stops > 0:
            self.fail_stops -= 1
            raise RuntimeError("stop failed")
        self.cluster_jobs.discard(job_id)


class TestIncrementalRounds:
    """Deterministic spot checks of the dirty-set bookkeeping."""

    def make(self, num_jobs=5, **kwargs):
        store = JobStore()
        service = JobService(store)
        actuator = GCActuator()
        syncer = StateSyncer(store, actuator, **kwargs)
        for index in range(num_jobs):
            service.provision(
                JobSpec(job_id=f"job-{index}", input_category="cat")
            )
        return store, service, actuator, syncer

    def test_first_round_is_a_full_scan(self):
        __, ___, ____, syncer = self.make()
        report = syncer.sync_once()
        assert report.full_scan
        assert report.examined == 5

    def test_quiescent_round_examines_nothing(self):
        __, ___, ____, syncer = self.make()
        syncer.sync_once()
        report = syncer.sync_once()
        assert not report.full_scan
        assert report.examined == 0
        assert report.total_synced == 0

    def test_single_change_examines_one_job(self):
        __, service, ____, syncer = self.make()
        syncer.sync_once()
        service.patch(
            "job-2", ConfigLevel.PROVISIONER,
            {"package": {"name": "engine", "version": "v2"}},
        )
        report = syncer.sync_once()
        assert not report.full_scan
        assert report.examined == 1
        assert report.simple_synced == ["job-2"]

    def test_deleted_job_is_garbage_collected_incrementally(self):
        store, service, actuator, syncer = self.make()
        syncer.sync_once()
        assert "job-1" in actuator.cluster_jobs
        service.deprovision("job-1")
        report = syncer.sync_once()
        assert not report.full_scan
        assert report.simple_synced == ["job-1"]
        assert "job-1" not in actuator.cluster_jobs

    def test_failed_gc_is_retried_next_incremental_round(self):
        store, service, actuator, syncer = self.make()
        syncer.sync_once()
        service.deprovision("job-1")
        actuator.fail_stops = 1
        report = syncer.sync_once()
        assert report.failed == ["job-1"]
        # No new feed entry for job-1, yet the retry set carries it over.
        report = syncer.sync_once()
        assert not report.full_scan
        assert report.simple_synced == ["job-1"]
        assert "job-1" not in actuator.cluster_jobs

    def test_failed_plan_is_retried_via_dirty_set(self):
        store, service, actuator, syncer = self.make(num_jobs=1)
        syncer.sync_once()
        service.patch(
            "job-0", ConfigLevel.PROVISIONER,
            {"package": {"name": "engine", "version": "v2"}},
        )
        original = actuator.apply_settings
        calls = {"n": 0}

        def flaky(job_id, config):
            if calls["n"] == 0:
                calls["n"] += 1
                raise RuntimeError("boom")
            return original(job_id, config)

        actuator.apply_settings = flaky
        report = syncer.sync_once()
        assert report.failed == ["job-0"]
        report = syncer.sync_once()
        assert not report.full_scan
        assert report.simple_synced == ["job-0"]

    def test_invalid_full_scan_interval_rejected(self):
        from repro.errors import SyncError

        store = JobStore()
        with pytest.raises(SyncError):
            StateSyncer(store, GCActuator(), full_scan_interval=0)
