"""Unit tests for execution-plan construction (jobs/plan.py)."""

import pytest

from repro.jobs.configs import config_diff
from repro.jobs.plan import TaskActuator, build_plan


class SpyActuator(TaskActuator):
    def __init__(self):
        self.calls = []

    def apply_settings(self, job_id, config):
        self.calls.append(("apply_settings", job_id, config))

    def stop_tasks(self, job_id):
        self.calls.append(("stop_tasks", job_id))

    def redistribute_checkpoints(self, job_id, old, new):
        self.calls.append(("redistribute", job_id, old, new))

    def start_tasks(self, job_id, count, config):
        self.calls.append(("start_tasks", job_id, count, config))


def plan_between(running, expected):
    return build_plan("job", running, expected, config_diff(running, expected))


def test_no_diff_empty_plan():
    config = {"task_count": 4, "package": {"version": "1"}}
    plan = plan_between(config, dict(config))
    assert plan.is_empty
    assert not plan.complex


def test_settings_change_builds_simple_plan():
    running = {"task_count": 4, "package": {"version": "1"}}
    expected = {"task_count": 4, "package": {"version": "2"}}
    plan = plan_between(running, expected)
    assert not plan.complex
    assert [action.name for action in plan.actions] == ["apply_settings"]
    actuator = SpyActuator()
    plan.execute(actuator)
    assert actuator.calls == [("apply_settings", "job", expected)]


def test_parallelism_change_builds_three_phase_plan():
    running = {"task_count": 4}
    expected = {"task_count": 8}
    plan = plan_between(running, expected)
    assert plan.complex
    assert [action.name for action in plan.actions] == [
        "stop_old_tasks", "redistribute_checkpoints", "start_new_tasks",
    ]
    actuator = SpyActuator()
    plan.execute(actuator)
    assert actuator.calls[0] == ("stop_tasks", "job")
    assert actuator.calls[1] == ("redistribute", "job", 4, 8)
    assert actuator.calls[2][0:3] == ("start_tasks", "job", 8)


def test_initial_provision_counts_from_zero():
    plan = plan_between({}, {"task_count": 4})
    actuator = SpyActuator()
    plan.execute(actuator)
    assert ("redistribute", "job", 0, 4) in actuator.calls


def test_target_config_is_expected():
    expected = {"task_count": 8, "extra": 1}
    plan = plan_between({"task_count": 4}, expected)
    assert plan.target_config == expected


def test_plan_stops_at_first_failure():
    running = {"task_count": 4}
    expected = {"task_count": 8}
    plan = plan_between(running, expected)

    class FailingActuator(SpyActuator):
        def redistribute_checkpoints(self, job_id, old, new):
            raise RuntimeError("boom")

    actuator = FailingActuator()
    with pytest.raises(RuntimeError):
        plan.execute(actuator)
    assert actuator.calls == [("stop_tasks", "job")], (
        "no action after the failing one may run"
    )
