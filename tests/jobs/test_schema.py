"""Tests for typed config validation (the Thrift-equivalent layer)."""

import pytest

from repro.errors import JobStoreError
from repro.jobs import ConfigLevel, JobService, JobSpec, JobStore
from repro.jobs.schema import validate_typed


class TestValidateTyped:
    def test_valid_full_config_passes(self):
        config = JobSpec(
            job_id="j", input_category="c", stateful=True,
            state_key_cardinality=100, output_category="o",
        ).to_provisioner_config()
        validate_typed(config)

    def test_wrong_scalar_type_rejected(self):
        with pytest.raises(JobStoreError, match="task_count"):
            validate_typed({"task_count": "ten"})

    def test_bool_is_not_an_int(self):
        with pytest.raises(JobStoreError, match="bool"):
            validate_typed({"task_count": True})

    def test_nested_type_checked(self):
        with pytest.raises(JobStoreError, match="resources.cpu"):
            validate_typed({"resources": {"cpu": "lots"}})
        with pytest.raises(JobStoreError, match="package.version"):
            validate_typed({"package": {"version": 2}})

    def test_mapping_expected_but_scalar_given(self):
        with pytest.raises(JobStoreError, match="mapping"):
            validate_typed({"resources": 4})

    def test_floats_accept_ints(self):
        validate_typed({"resources": {"cpu": 2}})  # int where float is fine

    def test_unknown_keys_are_open(self):
        """New services add new keys without schema changes (III-A)."""
        validate_typed({"auto_root_causer": {"enabled": True}})
        validate_typed({"resources": {"gpu": "why not"}})


class TestServiceEnforcement:
    def make_service(self):
        service = JobService(JobStore())
        service.provision(JobSpec(job_id="job", input_category="cat"))
        return service

    def test_typed_patch_rejected_at_write(self):
        service = self.make_service()
        with pytest.raises(JobStoreError, match="task_count"):
            service.patch("job", ConfigLevel.ONCALL, {"task_count": "many"})
        # Nothing was written.
        assert "task_count" not in (
            service.store.read_expected("job", ConfigLevel.ONCALL).config
        )

    def test_valid_patch_still_lands(self):
        service = self.make_service()
        service.patch("job", ConfigLevel.ONCALL, {"task_count": 7})
        assert service.expected_config("job")["task_count"] == 7
