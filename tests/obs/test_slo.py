"""Unit tests for the SLO tracker: budgets, burn rates, breach windows."""

import pytest

from repro.metrics.store import MetricStore
from repro.obs.sli import SliEvaluator
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    BurnRateRule,
    SloSpec,
    SloTracker,
    bad_fraction,
    burn_rate,
    default_slo_specs,
)
from repro.sim.engine import Engine
from repro.types import JobState

from tests.obs.test_sli import FakeJobService


class TestSpecValidation:
    def test_target_must_be_fraction(self):
        with pytest.raises(ValueError, match="target"):
            SloSpec("x", "lag_seconds", target=1.0, compliance_window=60.0)
        with pytest.raises(ValueError, match="target"):
            SloSpec("x", "lag_seconds", target=0.0, compliance_window=60.0)

    def test_sli_must_be_known(self):
        with pytest.raises(ValueError, match="unknown SLI"):
            SloSpec("x", "latency_p99", target=0.99, compliance_window=60.0)

    def test_comparator_must_be_known(self):
        with pytest.raises(ValueError, match="comparator"):
            SloSpec("x", "lag_seconds", target=0.99,
                    compliance_window=60.0, comparator="<")

    def test_budget_fraction_and_is_good(self):
        spec = SloSpec("x", "availability", target=0.99,
                       compliance_window=60.0, threshold=0.9,
                       comparator=">=")
        assert spec.budget_fraction == pytest.approx(0.01)
        assert spec.is_good(0.95, 0.9)
        assert not spec.is_good(0.5, 0.9)

    def test_burn_rule_windows_ordered(self):
        with pytest.raises(ValueError, match="short window"):
            BurnRateRule(300.0, 3600.0, 14.4, "page")

    def test_default_specs_cover_every_severity_surface(self):
        specs = default_slo_specs()
        assert {spec.sli for spec in specs} == {
            "lag_seconds", "freshness_seconds", "availability", "oom_rate",
            "task.recovery_lag",
        }
        assert all(spec.runbook for spec in specs)


class TestBurnMath:
    def test_bad_fraction_empty_series_is_zero(self):
        store = MetricStore()
        series = store.series("job", "slo_bad.lag")
        assert bad_fraction(series, 3600.0, now=0.0) == 0.0

    def test_burn_rate_scales_by_budget(self):
        store = MetricStore()
        series = store.series("job", "slo_bad.lag")
        # Half the samples bad over the window.
        for minute in range(10):
            series.record(minute * 60.0, 1.0 if minute % 2 else 0.0)
        now = 9 * 60.0
        frac = bad_fraction(series, 600.0, now)
        assert frac == pytest.approx(0.5)
        assert burn_rate(series, 600.0, now, target=0.99) == pytest.approx(50.0)


def build_tracker(lag_slo=90.0, rules=DEFAULT_BURN_RULES, interval=60.0):
    """A tracker over one fake job whose lag we set per simulated minute."""
    engine = Engine(seed=1)
    service = FakeJobService()
    service.add("job", {"task_count": 2, "slo": {"max_lag_seconds": lag_slo}})
    metrics = MetricStore()
    sli = SliEvaluator(service, metrics)
    tracker = SloTracker(engine, sli, rules=rules, interval=interval)

    lag = {"value": 0.0}

    def feed():
        metrics.record("job", "time_lagged", engine.now, lag["value"])
        metrics.record("job", "processing_rate_mb", engine.now, 2.0)
        metrics.record("job", "running_tasks", engine.now, 2.0)

    # The feed timer is created first so it fires before the tracker's
    # evaluation at the same timestamp (engine preserves creation order).
    engine.every(interval, feed, name="feed")
    tracker.start()
    return engine, service, metrics, tracker, lag


class TestTracker:
    def test_good_fleet_burns_nothing(self):
        engine, service, metrics, tracker, lag = build_tracker()
        lag["value"] = 10.0
        engine.run_for(1800.0)
        assert tracker.evaluations > 0
        assert tracker.budget_burned("job", "lag") == 0.0
        assert tracker.breaches == []
        assert tracker.alerts == []

    def test_bad_minutes_open_and_close_breach_windows(self):
        engine, service, metrics, tracker, lag = build_tracker()
        lag["value"] = 10.0
        engine.run_for(600.0)
        lag["value"] = 500.0  # way over the 90 s objective
        engine.run_for(300.0)
        open_breaches = [b for b in tracker.breaches if b.open]
        assert len(open_breaches) == 1
        assert open_breaches[0].slo == "lag"
        lag["value"] = 10.0
        engine.run_for(300.0)
        assert all(not b.open for b in tracker.breaches)
        closed = tracker.breaches[0]
        assert closed.duration(engine.now) > 0.0
        assert tracker.budget_burned("job", "lag") > 0.0

    def test_burn_alert_requires_both_windows(self):
        # A rule whose short window is longer than the bad burst: the
        # long window still burns but the short window has recovered,
        # so the alert must NOT fire after recovery.
        rules = (BurnRateRule(1200.0, 300.0, 10.0, "page"),)
        engine, service, metrics, tracker, lag = build_tracker(rules=rules)
        lag["value"] = 500.0
        engine.run_for(300.0)
        assert [a.severity for a in tracker.alerts] == ["page"]
        lag["value"] = 10.0
        engine.run_for(600.0)
        # Long window still remembers the burst...
        assert tracker.burn("job", "lag", 1200.0) > 10.0
        # ...but the short window is clean, so only the original alert.
        assert len(tracker.alerts) == 1

    def test_alerts_are_edge_triggered(self):
        rules = (BurnRateRule(1200.0, 300.0, 10.0, "page"),)
        engine, service, metrics, tracker, lag = build_tracker(rules=rules)
        lag["value"] = 500.0
        engine.run_for(900.0)  # burning the whole time
        assert len(tracker.alerts) == 1  # fired once, not once a minute
        alert = tracker.alerts[0]
        assert "burning" in alert.what
        assert alert.runbook  # carries the spec's runbook hint

    def test_quarantined_jobs_stop_accruing_samples(self):
        engine, service, metrics, tracker, lag = build_tracker()
        lag["value"] = 500.0
        engine.run_for(300.0)
        series = tracker._series("job", tracker.spec("lag"))
        before = series.count_between(0.0, engine.now)
        service.store.states["job"] = JobState.QUARANTINED
        engine.run_for(300.0)
        after = series.count_between(0.0, engine.now)
        assert after == before

    def test_job_store_outage_skips_round(self):
        engine, service, metrics, tracker, lag = build_tracker()
        lag["value"] = 10.0
        engine.run_for(300.0)
        evals = tracker.evaluations
        service.available = False
        engine.run_for(300.0)
        assert tracker.evaluations == evals  # rounds skipped, no crash
        service.available = True
        engine.run_for(120.0)
        assert tracker.evaluations > evals

    def test_report_statuses_and_json_round_trip(self):
        import json

        engine, service, metrics, tracker, lag = build_tracker()
        lag["value"] = 500.0
        engine.run_for(1200.0)
        report = tracker.report()
        lag_row = next(
            row for row in report["slos"] if row["slo"] == "lag"
        )
        assert lag_row["status"] == "breached"
        assert lag_row["budget_burned"] >= 1.0
        ok_row = next(
            row for row in report["slos"] if row["slo"] == "freshness"
        )
        assert ok_row["status"] == "ok"
        parsed = json.loads(tracker.to_json())
        assert parsed["slos"] == json.loads(json.dumps(report["slos"]))

    def test_render_is_a_compliance_table(self):
        engine, service, metrics, tracker, lag = build_tracker()
        lag["value"] = 10.0
        engine.run_for(300.0)
        text = tracker.render()
        assert "budget burned" in text
        assert "job" in text
        assert "breach windows:" in text

    def test_identical_runs_produce_identical_json(self):
        def run():
            engine, service, metrics, tracker, lag = build_tracker()
            lag["value"] = 10.0
            engine.run_for(600.0)
            lag["value"] = 300.0
            engine.run_for(600.0)
            return tracker.to_json()

        assert run() == run()

    def test_unknown_slo_name_raises(self):
        engine, service, metrics, tracker, lag = build_tracker()
        with pytest.raises(KeyError):
            tracker.spec("latency")

    def test_duplicate_spec_names_rejected(self):
        engine = Engine(seed=1)
        service = FakeJobService()
        sli = SliEvaluator(service, MetricStore())
        spec = SloSpec("lag", "lag_seconds", target=0.99,
                       compliance_window=3600.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloTracker(engine, sli, specs=(spec, spec))

    def test_stop_cancels_the_timer(self):
        engine, service, metrics, tracker, lag = build_tracker()
        engine.run_for(300.0)
        evals = tracker.evaluations
        tracker.stop()
        engine.run_for(600.0)
        assert tracker.evaluations == evals
