"""Unit tests for control-plane telemetry and engine instrumentation."""

import pytest

from repro.obs.bounded import BoundedList
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    EngineInstrumentation,
    Histogram,
    Telemetry,
    is_deterministic_instrument,
)
from repro.sim.engine import Engine


class TestInstruments:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.inc("x")
        telemetry.inc("x", 2.0)
        assert telemetry.counter("x") == 3.0
        assert telemetry.counter("missing") == 0.0

    def test_gauge_tracks_extremes(self):
        telemetry = Telemetry()
        for value in (5.0, 1.0, 9.0):
            telemetry.set_gauge("depth", value)
        gauge = telemetry.gauges["depth"]
        assert gauge.value == 9.0
        assert gauge.min_value == 1.0
        assert gauge.max_value == 9.0
        assert gauge.updates == 3

    def test_histogram_quantiles(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.95) == 100.0
        assert histogram.mean == pytest.approx(14.025)

    def test_disabled_records_nothing(self):
        NULL_TELEMETRY.inc("x")
        NULL_TELEMETRY.set_gauge("g", 1.0)
        NULL_TELEMETRY.observe("h", 1.0)
        assert NULL_TELEMETRY.counters == {}
        assert NULL_TELEMETRY.gauges == {}
        assert NULL_TELEMETRY.histograms == {}

    def test_snapshot_and_jsonl(self):
        telemetry = Telemetry()
        telemetry.inc("c")
        telemetry.set_gauge("g", 2.0)
        telemetry.observe("h", 3.0)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["gauges"]["g"]["value"] == 2.0
        assert snapshot["histograms"]["h"]["count"] == 1
        lines = telemetry.to_jsonl().splitlines()
        assert len(lines) == 3

    def test_slo_and_sli_instruments_are_deterministic(self):
        # The SLO plane derives everything from simulated metrics, so its
        # instruments belong in the byte-identical deterministic export —
        # except wall-clock timings, which never do.
        assert is_deterministic_instrument("slo.evals")
        assert is_deterministic_instrument("slo.alerts.page")
        assert is_deterministic_instrument("sli.fleet.jobs_lagging")
        assert not is_deterministic_instrument("slo.eval_wall_ms")
        assert not is_deterministic_instrument("sli.read_ms")
        # The existing exclusions stay excluded.
        assert not is_deterministic_instrument("cache.hits")
        assert not is_deterministic_instrument("metrics.window_fast")

    def test_deterministic_jsonl_includes_slo_gauges(self):
        telemetry = Telemetry()
        telemetry.inc("slo.evals")
        telemetry.set_gauge("sli.fleet.jobs_total", 3.0)
        telemetry.inc("slo.eval_wall_ms", 1.5)
        text = telemetry.to_jsonl(deterministic=True)
        assert "slo.evals" in text
        assert "sli.fleet.jobs_total" in text
        assert "eval_wall_ms" not in text

    def test_render_filters_by_prefix(self):
        telemetry = Telemetry()
        telemetry.inc("syncer.rounds")
        telemetry.inc("balancer.rounds")
        text = telemetry.render(prefix="syncer.")
        assert "syncer.rounds" in text
        assert "balancer.rounds" not in text


class TestEngineInstrumentation:
    def test_timer_fires_are_counted(self):
        telemetry = Telemetry()
        engine = Engine(instrumentation=EngineInstrumentation(telemetry))
        fired = []
        engine.every(10.0, lambda: fired.append(1), name="poller")
        engine.run_for(35.0)
        assert len(fired) == 3
        assert telemetry.counter("timer.poller.fires") == 3
        assert telemetry.histograms["timer.poller.wall_ms"].count == 3
        assert telemetry.counter("engine.events") == 3
        assert "engine.queue_depth" in telemetry.gauges

    def test_plain_callbacks_use_generic_histogram(self):
        telemetry = Telemetry()
        engine = Engine(instrumentation=EngineInstrumentation(telemetry))
        engine.call_in(1.0, lambda: None)
        engine.run_for(2.0)
        assert telemetry.histograms["engine.callback_wall_ms"].count == 1

    def test_exceptions_still_recorded(self):
        telemetry = Telemetry()
        engine = Engine(instrumentation=EngineInstrumentation(telemetry))

        def boom():
            raise ValueError("bad callback")

        engine.call_in(1.0, boom)
        with pytest.raises(ValueError):
            engine.run_for(2.0)
        assert telemetry.counter("engine.events") == 1

    def test_uninstrumented_engine_has_no_hook(self):
        engine = Engine()
        assert engine.instrumentation is None


class TestBoundedList:
    def test_behaves_like_a_list(self):
        items = BoundedList(maxlen=100)
        assert items == []
        items.append(1)
        items.extend([2, 3])
        assert items == [1, 2, 3]
        assert items[-1] == 3
        assert items[0:2] == [1, 2]

    def test_eviction_keeps_newest(self):
        items = BoundedList(maxlen=10)
        for index in range(25):
            items.append(index)
        assert len(items) <= 10
        assert items[-1] == 24
        assert items == sorted(items)

    def test_construction_trims_to_cap(self):
        items = BoundedList(range(20), maxlen=5)
        assert items == [15, 16, 17, 18, 19]

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            BoundedList(maxlen=0)
