"""End-to-end tracing: the acceptance criteria of the obs subsystem.

* ``chain(job_id)`` for a scaled job reconstructs the full causal story:
  detector symptom → scaler action → Job Store write → State Syncer plan →
  task/shard effects, plus the shard movements of a failover that touched
  the job.
* Trace exports are byte-identical across same-seed runs.
* Enabling the tracer changes no simulation outcome.
"""

from repro import JobSpec, PlatformConfig, Turbine
from repro.__main__ import _incident_platform
from repro.workloads import TrafficDriver


def small_platform(seed=11, tracing=False):
    platform = Turbine.create(
        num_hosts=3, seed=seed,
        config=PlatformConfig(num_shards=16, containers_per_host=2),
    )
    platform.attach_scaler()
    platform.attach_health_reporter(interval=120.0)
    if tracing:
        platform.enable_tracing()
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2,
                rate_per_thread_mb=2.0, task_count_limit=16),
    )
    driver.add_source("cat", lambda t: 20.0)
    driver.start()
    return platform


class TestCausalChain:
    def test_scaled_job_chain_spans_all_layers(self):
        platform = _incident_platform(seed=0, minutes=30.0)
        chain = platform.tracer.chain("demo/job-0")
        pairs = {(event.source, event.kind) for event in chain}
        assert ("detector", "symptom") in pairs
        assert any(
            source == "auto-scaler" and kind.startswith("action-")
            for source, kind in pairs
        )
        assert ("job-store", "config-write") in pairs
        assert ("state-syncer", "sync-plan") in pairs
        assert ("task-manager", "task-start") in pairs
        assert ("shard-manager", "shard-move") in pairs

    def test_quarantined_job_chain_explains_why(self):
        platform = _incident_platform(seed=0, minutes=15.0)
        chain = platform.tracer.chain("demo/job-1")
        kinds = {event.kind for event in chain}
        assert "config-write" in kinds    # the poisoned oncall override
        assert "sync-fail" in kinds       # the three failed plans
        assert "job-quarantined" in kinds
        quarantine = next(
            event for event in chain if event.kind == "job-quarantined"
        )
        assert quarantine.parent_id is not None

    def test_rendered_chain_is_printable(self):
        platform = _incident_platform(seed=0, minutes=15.0)
        text = platform.tracer.render_chain("demo/job-0")
        assert "trace T" in text
        assert "auto-scaler" in text


class TestDeterminism:
    def test_trace_jsonl_identical_across_same_seed_runs(self):
        first = _incident_platform(seed=3, minutes=12.0)
        second = _incident_platform(seed=3, minutes=12.0)
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()
        assert len(first.tracer.events) > 0

    def test_different_seeds_diverge(self):
        first = _incident_platform(seed=3, minutes=12.0)
        second = _incident_platform(seed=4, minutes=12.0)
        assert first.tracer.to_jsonl() != second.tracer.to_jsonl()


class TestNoPerturbation:
    def test_tracing_changes_no_simulation_outcome(self):
        plain = small_platform(tracing=False)
        traced = small_platform(tracing=True)
        plain.run_for(minutes=20)
        traced.run_for(minutes=20)
        assert len(traced.tracer.events) > 0
        assert plain.health.check_once() == traced.health.check_once()
        assert plain.job_service.expected_config(
            "job"
        ) == traced.job_service.expected_config("job")
        assert plain.running_tasks() == traced.running_tasks()
