"""Unit tests for the Prometheus text-format exposition."""

from repro.obs.prom import render_prometheus, sanitize_metric_name
from repro.obs.telemetry import Telemetry


class TestNames:
    def test_prefix_and_charset(self):
        assert sanitize_metric_name("syncer.rounds") == "repro_syncer_rounds"
        assert sanitize_metric_name("sli.fleet.jobs-total") == (
            "repro_sli_fleet_jobs_total"
        )

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("95th.latency").startswith("repro__95th")


class TestTelemetrySide:
    def test_counters_gauges_histograms(self):
        telemetry = Telemetry()
        telemetry.inc("syncer.rounds", 3)
        telemetry.set_gauge("fleet.jobs", 12.0)
        for value in (1.0, 2.0, 500.0):
            telemetry.observe("plan.size", value)
        text = render_prometheus(telemetry=telemetry)
        assert "# TYPE repro_syncer_rounds_total counter" in text
        assert "repro_syncer_rounds_total 3.0" in text
        assert "# TYPE repro_fleet_jobs gauge" in text
        assert "repro_fleet_jobs 12.0" in text
        assert "# TYPE repro_plan_size histogram" in text
        assert 'repro_plan_size_bucket{le="+Inf"} 3' in text
        assert "repro_plan_size_count 3" in text
        # Buckets are cumulative: every count <= the +Inf count.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_plan_size_bucket")
        ]
        assert counts == sorted(counts)

    def test_deterministic_gate_drops_wall_clock_instruments(self):
        telemetry = Telemetry()
        telemetry.inc("syncer.rounds")
        telemetry.inc("sync.wall_ms", 12.5)
        telemetry.inc("cache.hits")
        full = render_prometheus(telemetry=telemetry)
        gated = render_prometheus(telemetry=telemetry, deterministic=True)
        assert "wall_ms" in full and "cache_hits" in full
        assert "wall_ms" not in gated
        assert "cache_hits" not in gated
        assert "repro_syncer_rounds_total" in gated


class FakeSlo:
    def report(self, now=None):
        return {
            "slos": [
                {"job": "demo/job-0", "slo": "lag",
                 "budget_burned": 0.25, "burn_1h": 3.5},
            ],
            "breach_windows": [{"job": "demo/job-0"}],
            "alerts": [{"severity": "page"}, {"severity": "warn"}],
        }


class TestSloSide:
    def test_labeled_series_and_totals(self):
        text = render_prometheus(slo=FakeSlo())
        assert (
            'repro_slo_budget_burned{job="demo/job-0",slo="lag"} 0.25'
            in text
        )
        assert (
            'repro_slo_burn_rate_1h{job="demo/job-0",slo="lag"} 3.5'
            in text
        )
        assert "repro_slo_breach_windows_total 1" in text
        assert "repro_slo_alerts_total 2" in text

    def test_empty_snapshot_is_empty(self):
        assert render_prometheus() == ""
