"""Unit tests for the SLI derivation layer (repro.obs.sli)."""

import pytest

from repro.errors import DegradedModeError
from repro.metrics.store import MetricStore
from repro.obs.sli import (
    DEFAULT_LAG_SLO,
    OOM_WINDOW,
    SLI_NAMES,
    SliEvaluator,
)
from repro.types import JobState


class FakeJobStore:
    def __init__(self):
        self.states = {}

    def state_of(self, job_id):
        return self.states.get(job_id, JobState.RUNNING)


class FakeJobService:
    """Just enough of JobService for the evaluator: configs + states."""

    def __init__(self):
        self.configs = {}
        self.store = FakeJobStore()
        self.available = True

    def add(self, job_id, config=None, state=JobState.RUNNING):
        self.configs[job_id] = config or {"task_count": 4}
        self.store.states[job_id] = state

    def job_ids(self):
        if not self.available:
            raise DegradedModeError("Job Store unavailable")
        return sorted(self.configs)

    def expected_config(self, job_id):
        if not self.available:
            raise DegradedModeError("Job Store unavailable")
        return self.configs[job_id]


@pytest.fixture
def setup():
    service = FakeJobService()
    metrics = MetricStore()
    return service, metrics, SliEvaluator(service, metrics)


class TestPerJobSlis:
    def test_lag_is_newest_sample_or_none(self, setup):
        service, metrics, sli = setup
        service.add("job")
        assert sli.lag_seconds("job") is None
        metrics.record("job", "time_lagged", 10.0, 30.0)
        metrics.record("job", "time_lagged", 70.0, 45.0)
        assert sli.lag_seconds("job") == 45.0

    def test_freshness_is_age_of_newest_rate_sample(self, setup):
        service, metrics, sli = setup
        service.add("job")
        assert sli.freshness_seconds("job", now=100.0) is None
        metrics.record("job", "processing_rate_mb", 60.0, 2.0)
        assert sli.freshness_seconds("job", now=100.0) == 40.0
        # A clock exactly on the sample reads as perfectly fresh.
        assert sli.freshness_seconds("job", now=60.0) == 0.0

    def test_availability_ratio_and_cap(self, setup):
        service, metrics, sli = setup
        service.add("job", {"task_count": 4})
        assert sli.availability("job") is None  # no stats yet
        metrics.record("job", "running_tasks", 60.0, 3.0)
        assert sli.availability("job") == 0.75
        # More running than expected (scale-down in flight) caps at 1.
        metrics.record("job", "running_tasks", 120.0, 6.0)
        assert sli.availability("job") == 1.0

    def test_availability_none_without_expected_tasks(self, setup):
        service, metrics, sli = setup
        service.add("job", {"task_count": 0})
        metrics.record("job", "running_tasks", 60.0, 2.0)
        assert sli.availability("job") is None

    def test_oom_rate_counts_only_trailing_window(self, setup):
        service, metrics, sli = setup
        service.add("job")
        now = 2000.0
        metrics.record("job", "oom_events", now - OOM_WINDOW - 100.0, 1.0)
        metrics.record("job", "oom_events", now - 100.0, 1.0)
        metrics.record("job", "oom_events", now - 50.0, 1.0)
        assert sli.oom_rate("job", now) == 2.0

    def test_job_sli_dispatches_every_name(self, setup):
        service, metrics, sli = setup
        service.add("job")
        for name in SLI_NAMES:
            sli.job_sli("job", name, now=100.0)  # must not raise
        with pytest.raises(ValueError, match="unknown SLI"):
            sli.job_sli("job", "latency_p99", now=100.0)

    def test_lag_objective_defaults_and_per_job_override(self, setup):
        service, metrics, sli = setup
        service.add("strict", {"task_count": 2,
                               "slo": {"max_lag_seconds": 30.0}})
        service.add("default", {"task_count": 2})
        assert sli.lag_slo_seconds("strict") == 30.0
        assert sli.lag_slo_seconds("default") == DEFAULT_LAG_SLO


class TestFleetCounts:
    def test_lagging_judged_against_per_job_objective(self, setup):
        service, metrics, sli = setup
        service.add("strict", {"task_count": 2,
                               "slo": {"max_lag_seconds": 30.0}})
        service.add("lenient", {"task_count": 2,
                                "slo": {"max_lag_seconds": 600.0}})
        metrics.record("strict", "time_lagged", 60.0, 100.0)
        metrics.record("lenient", "time_lagged", 60.0, 100.0)
        counts = sli.fleet_counts(now=60.0)
        assert counts.jobs_total == 2
        assert counts.jobs_lagging == 1  # only the strict one
        assert counts.pct_lagging == 0.5

    def test_quarantined_jobs_not_judged_for_lag_or_oom(self, setup):
        service, metrics, sli = setup
        service.add("job", state=JobState.QUARANTINED)
        metrics.record("job", "time_lagged", 60.0, 10_000.0)
        metrics.record("job", "oom_events", 60.0, 1.0)
        counts = sli.fleet_counts(now=60.0)
        assert counts.jobs_quarantined == 1
        assert counts.jobs_lagging == 0
        assert counts.jobs_with_oom == 0
        assert counts.pct_unhealthy == 1.0

    def test_oom_jobs_counted(self, setup):
        service, metrics, sli = setup
        service.add("job")
        metrics.record("job", "oom_events", 60.0, 1.0)
        counts = sli.fleet_counts(now=120.0)
        assert counts.jobs_with_oom == 1

    def test_empty_fleet(self, setup):
        service, metrics, sli = setup
        counts = sli.fleet_counts(now=0.0)
        assert counts.jobs_total == 0
        assert counts.pct_lagging == 0.0
        assert counts.pct_unhealthy == 0.0

    def test_job_store_outage_propagates(self, setup):
        service, metrics, sli = setup
        service.add("job")
        service.available = False
        with pytest.raises(DegradedModeError):
            sli.fleet_counts(now=60.0)
