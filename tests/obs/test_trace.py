"""Unit tests for the causal decision tracer."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    SLOT_SYMPTOM,
    TraceEvent,
    Tracer,
    chain_from_events,
    render_chain_from_events,
)


class TestDisabled:
    def test_record_returns_none_and_stores_nothing(self):
        tracer = Tracer()
        assert tracer.record("detector", "symptom", job_id="job") is None
        assert len(tracer.events) == 0

    def test_context_slots_are_inert(self):
        tracer = Tracer()
        event = TraceEvent("T1", "s1", None, 0.0, "detector", "symptom")
        tracer.set_context("job", SLOT_SYMPTOM, event)
        assert tracer.claim_context("job", SLOT_SYMPTOM) is None
        tracer.set_shard_context("shard-1", event)
        assert tracer.peek_shard_context("shard-1") is None

    def test_null_tracer_cannot_be_enabled(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.enable()

    def test_real_tracer_enable_disable(self):
        tracer = Tracer()
        tracer.enable()
        assert tracer.record("a", "b") is not None
        tracer.disable()
        assert tracer.record("a", "b") is None


class TestRecording:
    def test_new_trace_without_parent(self):
        tracer = Tracer(enabled=True)
        first = tracer.record("detector", "symptom", job_id="job")
        second = tracer.record("detector", "symptom", job_id="job")
        assert first.trace_id != second.trace_id
        assert first.parent_id is None

    def test_parent_joins_trace(self):
        tracer = Tracer(enabled=True)
        parent = tracer.record("detector", "symptom", job_id="job")
        child = tracer.record("scaler", "action", job_id="job", parent=parent)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_clock_stamps_events(self):
        time = [0.0]
        tracer = Tracer(clock=lambda: time[0], enabled=True)
        time[0] = 42.5
        assert tracer.record("a", "b").time == 42.5

    def test_detail_is_sorted_and_accessible(self):
        tracer = Tracer(enabled=True)
        event = tracer.record("a", "b", zebra=1, alpha=2)
        assert [key for key, __ in event.detail] == ["alpha", "zebra"]
        assert event.detail_dict() == {"alpha": 2, "zebra": 1}

    def test_max_events_evicts_oldest(self):
        # Retention uses BoundedList (the health-report pattern): the cap
        # is never exceeded, eviction drops the oldest events first, and
        # the newest events always survive.
        tracer = Tracer(enabled=True, max_events=5)
        for index in range(8):
            tracer.record("a", "b", index=index)
        assert len(tracer.events) <= 5
        indices = [event.detail_dict()["index"] for event in tracer.events]
        assert indices == sorted(indices)
        assert indices[-1] == 7
        assert 0 not in indices

    def test_bounded_events_still_chain_and_export(self):
        tracer = Tracer(enabled=True, max_events=10)
        parent = None
        for index in range(25):
            parent = tracer.record(
                "a", "step", job_id="job", index=index, parent=parent
            )
        # The retained window still renders and chains without the
        # evicted ancestors: the chain is just the surviving suffix.
        chain = tracer.chain("job")
        assert chain
        assert chain[-1] is parent
        lines = tracer.to_jsonl().strip().splitlines()
        assert len(lines) == len(tracer.events)


class TestContextSlots:
    def test_claim_pops(self):
        tracer = Tracer(enabled=True)
        event = tracer.record("detector", "symptom", job_id="job")
        tracer.set_context("job", SLOT_SYMPTOM, event)
        assert tracer.claim_context("job", SLOT_SYMPTOM) is event
        assert tracer.claim_context("job", SLOT_SYMPTOM) is None

    def test_peek_does_not_pop(self):
        tracer = Tracer(enabled=True)
        event = tracer.record("detector", "symptom", job_id="job")
        tracer.set_context("job", SLOT_SYMPTOM, event)
        assert tracer.peek_context("job", SLOT_SYMPTOM) is event
        assert tracer.peek_context("job", SLOT_SYMPTOM) is event

    def test_slots_are_per_job(self):
        tracer = Tracer(enabled=True)
        event = tracer.record("detector", "symptom", job_id="a")
        tracer.set_context("a", SLOT_SYMPTOM, event)
        assert tracer.claim_context("b", SLOT_SYMPTOM) is None

    def test_shard_context_set_and_clear(self):
        tracer = Tracer(enabled=True)
        event = tracer.record("shard-manager", "shard-move", shard="s1")
        tracer.set_shard_context("s1", event)
        assert tracer.peek_shard_context("s1") is event
        tracer.clear_shard_context("s1")
        assert tracer.peek_shard_context("s1") is None


class TestChain:
    def build(self):
        tracer = Tracer(enabled=True)
        symptom = tracer.record("detector", "symptom", job_id="job")
        action = tracer.record(
            "auto-scaler", "action", job_id="job", parent=symptom
        )
        tracer.record("job-store", "config-write", job_id="job", parent=action)
        tracer.record("detector", "symptom", job_id="other")
        tracer.record(
            "shard-manager", "shard-move", jobs=["job", "other"], shard="s1"
        )
        return tracer

    def test_mentions_job_via_jobs_detail(self):
        tracer = self.build()
        move = tracer.events[-1]
        assert move.mentions_job("job")
        assert move.mentions_job("other")
        assert not move.mentions_job("third")

    def test_chain_collects_whole_traces(self):
        tracer = self.build()
        chain = tracer.chain("job")
        kinds = [event.kind for event in chain]
        assert kinds == ["symptom", "action", "config-write", "shard-move"]

    def test_chain_excludes_other_jobs(self):
        tracer = self.build()
        assert all(
            event.job_id != "other" for event in tracer.chain("job")
        )

    def test_render_chain_indents_children(self):
        tracer = self.build()
        text = tracer.render_chain("job")
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        symptom_line = next(line for line in lines if "symptom" in line)
        action_line = next(line for line in lines if "action" in line)
        indent = len(symptom_line) - len(symptom_line.lstrip())
        child_indent = len(action_line) - len(action_line.lstrip())
        assert child_indent > indent

    def test_render_chain_empty(self):
        tracer = Tracer(enabled=True)
        assert "no trace events" in tracer.render_chain("ghost")


class TestExport:
    def test_jsonl_roundtrip(self):
        tracer = TestChain().build()
        loaded = Tracer.load_jsonl(tracer.to_jsonl())
        assert loaded == list(tracer.events)

    def test_chain_from_loaded_events_matches(self):
        tracer = TestChain().build()
        loaded = Tracer.load_jsonl(tracer.to_jsonl())
        assert chain_from_events(loaded, "job") == tracer.chain("job")
        assert render_chain_from_events(
            loaded, "job"
        ) == tracer.render_chain("job")

    def test_write_jsonl(self, tmp_path):
        tracer = TestChain().build()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        assert Tracer.load_jsonl(path.read_text()) == list(tracer.events)
