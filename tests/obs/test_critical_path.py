"""Unit tests for trace critical-path analysis."""

from repro.obs.critical_path import (
    CriticalPath,
    PathStep,
    critical_paths,
    layer_costs,
    render_critical_path,
)
from repro.obs.trace import TraceEvent


def event(trace, span, parent, time, source, kind="step", job=None):
    return TraceEvent(
        trace_id=trace, span_id=span, parent_id=parent, time=time,
        source=source, kind=kind, job_id=job,
    )


def branching_trace():
    """One root with a fast branch (+5 s) and a slow branch (+20+30 s)."""
    return [
        event("T1", "s1", None, 100.0, "detector", job="job"),
        event("T1", "s2", "s1", 105.0, "auto-scaler", job="job"),
        event("T1", "s3", "s1", 120.0, "job-store", job="job"),
        event("T1", "s4", "s3", 150.0, "state-syncer", job="job"),
    ]


class TestLongestPath:
    def test_picks_the_slow_branch(self):
        paths = critical_paths(branching_trace())
        assert len(paths) == 1
        path = paths[0]
        assert path.total == 50.0
        assert [step.event.span_id for step in path.steps] == ["s1", "s3", "s4"]
        assert [step.elapsed for step in path.steps] == [0.0, 20.0, 30.0]

    def test_edges_are_layer_labels(self):
        path = critical_paths(branching_trace())[0]
        assert path.edges == [
            ("detector->job-store", 20.0),
            ("job-store->state-syncer", 30.0),
        ]

    def test_single_span_trace(self):
        paths = critical_paths([event("T1", "s1", None, 5.0, "detector")])
        assert paths[0].total == 0.0
        assert len(paths[0].steps) == 1

    def test_orphan_parent_treated_as_root(self):
        # The parent span was evicted from the bounded tracer buffer:
        # the surviving suffix must still analyze.
        events = [
            event("T1", "s5", "s-gone", 200.0, "state-syncer", job="job"),
            event("T1", "s6", "s5", 260.0, "task-manager", job="job"),
        ]
        paths = critical_paths(events)
        assert paths[0].total == 60.0
        assert paths[0].steps[0].event.span_id == "s5"

    def test_job_filter_selects_causal_closure(self):
        events = branching_trace() + [
            event("T2", "x1", None, 0.0, "detector", job="other"),
            event("T2", "x2", "x1", 400.0, "auto-scaler", job="other"),
        ]
        paths = critical_paths(events, job_id="job")
        assert [path.trace_id for path in paths] == ["T1"]

    def test_first_seen_order_is_deterministic(self):
        events = [
            event("T2", "x1", None, 0.0, "a"),
            event("T1", "y1", None, 0.0, "a"),
        ]
        assert [p.trace_id for p in critical_paths(events)] == ["T2", "T1"]


class TestLayerCosts:
    def test_aggregates_across_traces(self):
        path_a = critical_paths(branching_trace())[0]
        rows = layer_costs([path_a, path_a])
        assert rows[0] == ("job-store->state-syncer", 60.0, 2)
        assert rows[1] == ("detector->job-store", 40.0, 2)

    def test_ties_break_by_label(self):
        steps = (
            PathStep(event("T1", "s1", None, 0.0, "b"), 0.0),
            PathStep(event("T1", "s2", "s1", 10.0, "a"), 10.0),
        )
        other = (
            PathStep(event("T2", "s3", None, 0.0, "a"), 0.0),
            PathStep(event("T2", "s4", "s3", 10.0, "b"), 10.0),
        )
        rows = layer_costs([
            CriticalPath("T1", steps), CriticalPath("T2", other)
        ])
        assert [row[0] for row in rows] == ["a->b", "b->a"]


class TestRender:
    def test_report_shows_slowest_chain_and_costs(self):
        text = render_critical_path(branching_trace(), "job")
        assert "slowest causal chain for job" in text
        assert "50.0s end to end" in text
        assert "job-store->state-syncer" in text
        assert "layer costs" in text

    def test_empty_selection_reports_no_events(self):
        assert "no trace events" in render_critical_path([], "ghost")
        assert "no trace events" in render_critical_path(
            branching_trace(), "ghost"
        )
