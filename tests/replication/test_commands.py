"""Command encoding: canonical, round-trippable, replay-faithful."""

import pytest

from repro.jobs import ConfigLevel, JobStore
from repro.replication import (
    COMMAND_OPS,
    Command,
    ReplicationError,
    apply_command,
    decode_command,
    encode_command,
)
from repro.types import JobState


def test_encode_is_canonical_and_round_trips():
    payload = encode_command(
        "write_expected",
        {"job_id": "a/j", "level": "ONCALL",
         "config": {"task_count": 3}, "expected_version": 0},
    )
    # Canonical JSON: sorted keys, no whitespace — byte-stable per run.
    assert payload == encode_command(
        "write_expected",
        {"expected_version": 0, "config": {"task_count": 3},
         "level": "ONCALL", "job_id": "a/j"},
    )
    command = decode_command(payload)
    assert command.op == "write_expected"
    assert command.args["config"] == {"task_count": 3}


def test_unknown_op_rejected_everywhere():
    with pytest.raises(ReplicationError):
        encode_command("drop_table", {})
    with pytest.raises(ReplicationError):
        Command("drop_table")
    with pytest.raises(ReplicationError):
        decode_command('{"op": "drop_table", "args": {}}')


def test_malformed_payload_rejected():
    with pytest.raises(ReplicationError):
        decode_command("not json")
    with pytest.raises(ReplicationError):
        decode_command('["op"]')


@pytest.mark.parametrize("op", COMMAND_OPS)
def test_every_op_replays(op):
    origin = JobStore()
    replica = JobStore()
    tape = []
    origin.set_command_sink(
        lambda name, args: tape.append(encode_command(name, args))
    )
    origin.create_job("a/j")
    if op == "set_state":
        origin.set_state("a/j", JobState.STOPPED)
    elif op == "write_expected":
        origin.write_expected("a/j", ConfigLevel.ONCALL, {"task_count": 2}, 0)
    elif op == "commit_running":
        origin.commit_running("a/j", {"task_count": 2}, quiet=True)
    elif op == "mark_dirty":
        origin.mark_dirty("a/j")
    elif op == "delete_job":
        origin.delete_job("a/j")
    assert any(decode_command(p).op == op for p in tape)
    for payload in tape:
        apply_command(replica, decode_command(payload))
    assert replica.dump_snapshot() == origin.dump_snapshot()


def test_sink_can_be_cleared():
    store = JobStore()
    tape = []
    store.set_command_sink(lambda op, args: tape.append(op))
    store.create_job("a/j")
    store.set_command_sink(None)
    store.create_job("a/k")
    assert tape == ["create_job"]
