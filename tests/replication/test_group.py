"""ReplicationGroup: lease election, catch-up, snapshot transfer,
failover — on a bare platform (scenario-level proofs live in
tests/chaos/test_replication_scenarios.py)."""

import pytest

from repro.errors import DegradedModeError
from repro.jobs import ConfigLevel
from repro.jobs.model import JobSpec
from repro.platform import Turbine
from repro.replication import COMMAND_LOG_NAME, ReplicationError


def make_platform(seed=1, **repl_kwargs):
    platform = Turbine.create(num_hosts=2, seed=seed)
    group = platform.attach_replication(**repl_kwargs)
    platform.provision(
        JobSpec(job_id="t/j", input_category="cat", task_count=2)
    )
    platform.start()
    return platform, group


def test_bootstrap_leader_and_log():
    platform, group = make_platform()
    assert group.leader_id == "replica-0"
    assert group.has_leader
    assert platform.scribe.get_log(COMMAND_LOG_NAME) is group.log
    # Provisioning before start already hit the log via the sink.
    assert group.log.head_index > 0


def test_followers_reach_byte_identity():
    platform, group = make_platform()
    platform.run_for(minutes=5)
    assert group.in_sync
    snapshots = {
        replica_id: group.replica_snapshot(replica_id)
        for replica_id in group.replicas
    }
    assert len(set(snapshots.values())) == 1


def test_fault_free_run_records_no_events():
    platform, group = make_platform()
    platform.run_for(minutes=10)
    assert list(group.events) == []
    assert group.failovers == []


def test_leader_crash_degrades_endpoint_then_fails_over():
    platform, group = make_platform()
    platform.run_for(minutes=5)
    group.crash("leader")
    assert not group.has_leader
    with pytest.raises(DegradedModeError):
        platform.job_store.job_ids()
    # Lease (10s) + one heartbeat tick (3s) bounds the leaderless window.
    platform.run_for(seconds=15)
    assert group.has_leader
    assert group.leader_id == "replica-1"   # highest applied, lowest id
    assert platform.job_store.job_ids() == ["t/j"]
    assert len(group.failovers) == 1
    __, leaderless = group.failovers[0]
    assert leaderless < 40.0                # beats the reboot clock
    kinds = [event.kind for event in group.events]
    assert kinds == ["leader-lost", "leader-elected"]


def test_writes_survive_failover_exactly_once():
    platform, group = make_platform()
    platform.run_for(minutes=2)
    platform.job_service.patch("t/j", ConfigLevel.ONCALL, {"task_count": 3})
    group.crash("leader")
    platform.run_for(seconds=20)
    # The patched expected config survived the leader with it applied.
    assert platform.job_service.expected_config("t/j")["task_count"] == 3
    platform.run_for(minutes=2)
    assert group.in_sync
    assert group.replica_snapshot(group.leader_id) == group.replica_snapshot(
        "replica-2"
    )


def test_no_election_without_catchup_capable_candidate():
    platform, group = make_platform()
    platform.run_for(minutes=1)
    group.crash("replica-1")
    group.crash("replica-2")
    group.crash("leader")
    platform.run_for(seconds=30)
    assert not group.has_leader             # everyone is dead: stalled
    group.restart("replica-1")
    platform.run_for(seconds=30)
    # The log covers the store's whole history, so the rejoined replica
    # rebuilt by full replay (no leader to snapshot from) and won.
    assert group.has_leader
    assert group.leader_id == "replica-1"


def test_rejoin_bootstraps_via_snapshot():
    platform, group = make_platform()
    platform.run_for(minutes=2)
    group.crash("replica-2")
    platform.job_service.patch("t/j", ConfigLevel.ONCALL, {"task_count": 3})
    group.trim_log()
    group.restart("replica-2")
    platform.run_for(seconds=10)
    assert group.in_sync
    assert any(event.kind == "snapshot-install" for event in group.events)
    assert group.replica_snapshot("replica-2") == (
        platform.job_store.dump_snapshot()
    )


def test_crash_restart_are_idempotent_and_validated():
    platform, group = make_platform()
    replica_id = group.crash("replica-1")
    assert replica_id == "replica-1"
    assert group.crash("replica-1") == "replica-1"   # already down: no-op
    group.restart("replica-1")
    group.restart("replica-1")                       # already up: no-op
    with pytest.raises(ReplicationError):
        group.crash("replica-9")
    with pytest.raises(ReplicationError):
        group.restart("replica-9")


def test_constructor_validation():
    platform = Turbine.create(num_hosts=1, seed=0)
    with pytest.raises(ReplicationError):
        platform.attach_replication(replicas=1)
    with pytest.raises(ReplicationError):
        platform.attach_replication(heartbeat_interval=10.0, lease_timeout=5.0)


def test_lagging_replica_detected_then_drains():
    platform, group = make_platform(catchup_interval=60.0)
    platform.run_for(seconds=5)
    platform.job_service.patch("t/j", ConfigLevel.ONCALL, {"task_count": 3})
    # The command landed in the log but the slow catch-up timer has not
    # fired yet: followers are lagging (ISSUE satellite — this must read
    # as "not yet converged", never as a placement violation).
    assert group.lagging_replicas() == ["replica-1", "replica-2"]
    assert not group.in_sync
    platform.run_for(seconds=60)
    assert group.lagging_replicas() == []
    assert group.in_sync

def test_crash_leader_twice_needs_a_leader():
    platform, group = make_platform()
    group.crash("leader")
    with pytest.raises(ReplicationError):
        group.crash("leader")               # nobody is leading now


def test_replica_snapshot_of_dead_replica_raises():
    platform, group = make_platform()
    group.crash("replica-1")
    with pytest.raises(ReplicationError):
        group.replica_snapshot("replica-1")


def test_stop_cancels_timers():
    platform, group = make_platform()
    platform.run_for(minutes=1)
    head = group.log.head_index
    group.stop()
    platform.job_service.patch("t/j", ConfigLevel.ONCALL, {"task_count": 3})
    platform.run_for(minutes=2)
    # The sink still logs (it is the store's, not the timers') but no
    # catch-up ran, so followers stay behind.
    assert group.log.head_index > head
    assert group.lagging_replicas()
    group.start()
    platform.run_for(seconds=10)
    assert group.in_sync


def test_non_genesis_rejoin_waits_for_a_leader():
    """Replication attached mid-life (state predates the log): a replica
    that lost its disk can only recover via leader snapshot. With no
    leader alive it must wait, not fabricate state from a partial log."""
    platform = Turbine.create(num_hosts=2, seed=1)
    platform.provision(
        JobSpec(job_id="t/j", input_category="cat", task_count=2)
    )
    group = platform.attach_replication()
    platform.start()
    platform.run_for(minutes=1)
    group.crash("replica-1")
    group.crash("replica-2")
    group.crash("leader")
    group.restart("replica-1")
    platform.run_for(minutes=2)
    assert not group.has_leader             # stalled, correctly
    # A leader returning unblocks the snapshot path. Restarting the old
    # leader cannot help (its disk is gone too) — instead verify the
    # stall is stable and nothing invented a leader from partial state.
    assert group.replicas["replica-1"].applied is None
