"""Hypothesis equivalence suite: the log-applied store IS the store.

The replication tentpole's core claim: a Job Store built by replaying
the command log is byte-identical to the store that executed the
mutations first-hand — under random interleavings of every mutation
kind, CAS conflicts, log compaction (retention trims), and
snapshot-install catch-up. If this holds, a promoted follower can never
lose or duplicate a committed mutation.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

import pytest

from repro.errors import VersionConflictError
from repro.jobs import ConfigLevel, JobStore
from repro.replication import apply_command, decode_command, encode_command
from repro.scribe import CommandLog, RetentionError
from repro.types import JobState

JOBS = ["job-a", "job-b"]
EXTRA_JOB = "job-x"
LEVELS = list(ConfigLevel)
STATES = [JobState.RUNNING, JobState.STOPPED, JobState.QUARANTINED]


class LogEquivalenceMachine(RuleBasedStateMachine):
    """Random mutation histories; replica must replay to the same bytes."""

    def __init__(self):
        super().__init__()
        self.log = CommandLog("turbine.jobstore-commands")
        self.origin = JobStore()
        self.origin.set_command_sink(
            lambda op, args: self.log.append(encode_command(op, args))
        )
        self.replica = JobStore()
        self.applied = 0
        #: (job, level) -> current version (for fresh CAS writes).
        self.versions = {}
        self.extra_exists = False

    @initialize()
    def seed_jobs(self):
        for job_id in JOBS:
            self.origin.create_job(job_id)
            for level in LEVELS:
                self.versions[(job_id, level)] = 0

    # ------------------------------------------------------------------
    # Origin mutations (each appends exactly its own command)
    # ------------------------------------------------------------------
    @rule(
        job=st.sampled_from(JOBS),
        level=st.sampled_from(LEVELS),
        value=st.integers(1, 16),
    )
    def fresh_write(self, job, level, value):
        version = self.versions[(job, level)]
        self.origin.write_expected(
            job, level, {"task_count": value}, version
        )
        self.versions[(job, level)] = version + 1

    @rule(
        job=st.sampled_from(JOBS),
        level=st.sampled_from(LEVELS),
        value=st.integers(1, 16),
    )
    def stale_write_logs_nothing(self, job, level, value):
        head_before = self.log.head_index
        with pytest.raises(VersionConflictError):
            self.origin.write_expected(
                job, level, {"task_count": value},
                self.versions[(job, level)] + 7,
            )
        # A failed CAS must never reach the log — commands are appended
        # only after the mutation succeeded on the leader.
        assert self.log.head_index == head_before

    @rule(
        job=st.sampled_from(JOBS),
        value=st.integers(1, 16),
        quiet=st.booleans(),
    )
    def commit_running(self, job, value, quiet):
        self.origin.commit_running(job, {"task_count": value}, quiet=quiet)

    @rule(job=st.sampled_from(JOBS), state=st.sampled_from(STATES))
    def set_state(self, job, state):
        self.origin.set_state(job, state)

    @rule(job=st.sampled_from(JOBS))
    def mark_dirty(self, job):
        self.origin.mark_dirty(job)

    @rule()
    @precondition(lambda self: not self.extra_exists)
    def create_extra_job(self):
        self.origin.create_job(EXTRA_JOB)
        self.extra_exists = True

    @rule()
    @precondition(lambda self: self.extra_exists)
    def delete_extra_job(self):
        self.origin.delete_job(EXTRA_JOB)
        self.extra_exists = False

    # ------------------------------------------------------------------
    # Log lifecycle
    # ------------------------------------------------------------------
    @rule(keep=st.integers(0, 4))
    def compact(self, keep):
        """The retention horizon passes, keeping only ``keep`` records."""
        self.log.trim(max(self.log.head_index - keep, 0))

    @rule()
    def snapshot_install(self):
        """Unconditional state transfer (a fresh replica bootstrapping)."""
        self.replica = JobStore.load_snapshot(self.origin.dump_snapshot())
        self.applied = self.log.head_index

    # ------------------------------------------------------------------
    # Catch-up + the equivalence assertion
    # ------------------------------------------------------------------
    @rule()
    def catch_up_and_verify(self):
        if self.applied < self.log.first_index:
            # Behind the horizon: the log must refuse the read, and the
            # replica must recover via snapshot transfer.
            with pytest.raises(RetentionError):
                self.log.read_from(self.applied)
            self.snapshot_install()
        for index, payload in self.log.read_from(self.applied):
            apply_command(self.replica, decode_command(payload))
            self.applied = index + 1
        assert self.replica.dump_snapshot() == self.origin.dump_snapshot()

    def teardown(self):
        # Every history ends with a full catch-up and byte comparison.
        self.catch_up_and_verify()


TestLogEquivalence = LogEquivalenceMachine.TestCase
TestLogEquivalence.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
