"""Unit tests for the shared resilience policy kit."""

import pytest

from repro.errors import CircuitOpenError, DegradedModeError
from repro.obs.telemetry import Telemetry
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Dependency,
    LastKnownGood,
    RetryPolicy,
)
from repro.sim import SeededRng


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_delay_grows_exponentially():
    policy = RetryPolicy(base_delay=2.0, multiplier=3.0, max_delay=1000.0)
    assert policy.delay(0) == 2.0
    assert policy.delay(1) == 6.0
    assert policy.delay(2) == 18.0


def test_retry_delay_caps_at_max():
    policy = RetryPolicy(base_delay=10.0, multiplier=10.0, max_delay=50.0)
    assert policy.delay(5) == 50.0


def test_retry_jitter_is_deterministic_per_rng():
    policy = RetryPolicy(base_delay=10.0, jitter=0.5)
    a = policy.delay(0, rng=SeededRng(7))
    b = policy.delay(0, rng=SeededRng(7))
    assert a == b
    assert 5.0 <= a <= 15.0
    assert policy.delay(0, rng=SeededRng(8)) != a


def test_retry_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_opens_after_threshold():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=30.0)
    for __ in range(2):
        breaker.record_failure(now=0.0)
        assert breaker.state == CLOSED
    breaker.record_failure(now=0.0)
    assert breaker.state == OPEN
    assert breaker.times_opened == 1
    assert not breaker.allows(now=10.0)


def test_breaker_half_opens_after_timeout_and_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30.0)
    breaker.record_failure(now=0.0)
    assert not breaker.allows(now=29.0)
    assert breaker.allows(now=30.0)   # the probe goes through
    assert breaker.state == HALF_OPEN
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allows(now=31.0)


def test_breaker_half_open_failure_reopens_immediately():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
    for __ in range(3):
        breaker.record_failure(now=0.0)
    assert breaker.allows(now=10.0)
    breaker.record_failure(now=10.0)  # one probe failure suffices
    assert breaker.state == OPEN
    assert breaker.times_opened == 2
    assert not breaker.allows(now=15.0)


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# LastKnownGood
# ----------------------------------------------------------------------
def test_lkg_empty_then_stored():
    lkg = LastKnownGood()
    assert not lkg.has_value
    assert lkg.get(default="fallback") == "fallback"
    assert lkg.age(now=100.0) == float("inf")
    lkg.store({"a": 1}, now=50.0)
    assert lkg.has_value
    assert lkg.get() == {"a": 1}
    assert lkg.age(now=80.0) == 30.0


# ----------------------------------------------------------------------
# Dependency
# ----------------------------------------------------------------------
def make_dep(**kwargs):
    clock = Clock()
    telemetry = Telemetry(enabled=True)
    dep = Dependency("edge", clock=clock, telemetry=telemetry, **kwargs)
    return dep, clock, telemetry


def counter(telemetry, what):
    return telemetry.counters.get(f"resilience.edge.{what}", 0.0)


def test_call_passes_through_and_counts():
    dep, __, telemetry = make_dep()
    assert dep.call(lambda x: x + 1, 41) == 42
    assert counter(telemetry, "calls") == 1
    assert dep.last_error is None


def test_call_retries_degraded_failures_synchronously():
    dep, __, telemetry = make_dep(retry=RetryPolicy(max_attempts=3))
    outcomes = [DegradedModeError("a"), DegradedModeError("b"), "ok"]

    def flaky():
        result = outcomes.pop(0)
        if isinstance(result, Exception):
            raise result
        return result

    assert dep.call(flaky) == "ok"
    assert counter(telemetry, "calls") == 3
    assert counter(telemetry, "retries") == 2
    assert counter(telemetry, "unavailable") == 2


def test_call_raises_when_retries_exhausted():
    dep, __, telemetry = make_dep(retry=RetryPolicy(max_attempts=2))

    def always_down():
        raise DegradedModeError("down")

    with pytest.raises(DegradedModeError):
        dep.call(always_down)
    assert counter(telemetry, "calls") == 2
    assert counter(telemetry, "unavailable") == 2
    assert isinstance(dep.last_error, DegradedModeError)


def test_call_does_not_retry_unexpected_errors():
    dep, __, telemetry = make_dep(retry=RetryPolicy(max_attempts=3))
    calls = []

    def broken():
        calls.append(1)
        raise ValueError("bug")

    with pytest.raises(ValueError):
        dep.call(broken)
    assert len(calls) == 1
    assert counter(telemetry, "failures") == 1


def test_breaker_short_circuits_and_half_open_probe_recovers():
    dep, clock, telemetry = make_dep(
        breaker=CircuitBreaker(failure_threshold=2, reset_timeout=30.0)
    )

    def down():
        raise DegradedModeError("down")

    for __ in range(2):
        with pytest.raises(DegradedModeError):
            dep.call(down)
    assert counter(telemetry, "breaker_opened") == 1
    # While open: short-circuited without touching the service.
    with pytest.raises(CircuitOpenError):
        dep.call(lambda: "never called")
    assert counter(telemetry, "short_circuits") == 1
    # After the reset timeout the next call is the probe.
    clock.now = 30.0
    assert dep.call(lambda: "recovered") == "recovered"
    assert dep.breaker.state == CLOSED


def test_probe_returns_default_and_counts_fallbacks():
    dep, __, telemetry = make_dep()

    def down():
        raise DegradedModeError("down")

    assert dep.probe(down, default="cached") == "cached"
    assert counter(telemetry, "fallbacks") == 1
    assert dep.probe(lambda: "live") == "live"


def test_probe_swallows_open_breaker():
    dep, __, __tel = make_dep(
        breaker=CircuitBreaker(failure_threshold=1, reset_timeout=300.0)
    )
    with pytest.raises(DegradedModeError):
        dep.call(lambda: (_ for _ in ()).throw(DegradedModeError("x")))
    assert dep.probe(lambda: "ignored", default=None) is None


def test_schedule_delay_uses_policy():
    dep, __, __tel = make_dep(
        retry=RetryPolicy(base_delay=5.0, multiplier=2.0)
    )
    assert dep.schedule_delay(0) == 5.0
    assert dep.schedule_delay(2) == 20.0


def test_counters_are_deterministic_instruments():
    from repro.obs.telemetry import is_deterministic_instrument

    for what in ("calls", "retries", "unavailable", "failures",
                 "short_circuits", "breaker_opened", "fallbacks"):
        assert is_deterministic_instrument(f"resilience.edge.{what}")
