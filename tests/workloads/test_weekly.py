"""Tests for weekly traffic modulation."""

import pytest

from repro.workloads import WeeklyPattern
from repro.workloads.diurnal import DAY, constant


def test_weekday_factors_apply():
    pattern = WeeklyPattern(constant(10.0))
    assert pattern.rate(0.0) == 10.0            # Monday
    assert pattern.rate(4 * DAY) == 10.0        # Friday
    assert pattern.rate(5 * DAY) == pytest.approx(7.0)   # Saturday
    assert pattern.rate(6 * DAY) == pytest.approx(6.5)   # Sunday
    assert pattern.rate(7 * DAY) == 10.0        # Monday again


def test_day_of_week_wraps():
    pattern = WeeklyPattern(constant(1.0))
    assert pattern.day_of_week(0.0) == 0
    assert pattern.day_of_week(13 * DAY + 1.0) == 6
    assert pattern.day_of_week(14 * DAY) == 0


def test_custom_factors():
    pattern = WeeklyPattern(constant(10.0), factors=[1, 2, 3, 4, 5, 6, 7])
    assert pattern.rate(2 * DAY) == 30.0


def test_invalid_factors_rejected():
    with pytest.raises(ValueError):
        WeeklyPattern(constant(1.0), factors=[1.0] * 6)
    with pytest.raises(ValueError):
        WeeklyPattern(constant(1.0), factors=[1.0] * 6 + [-0.5])


def test_history_spans_full_weeks():
    """The pattern analyzer's 14-day lookback covers two full weekly
    cycles — a Monday looks back at two prior Mondays, not at Sunday's
    trough. Here: capacity sized for a weekday sustains every Monday in
    history even though weekends were quieter."""
    from repro.metrics import MetricStore
    from repro.scaler import PatternAnalyzer
    from tests.scaler.helpers import make_snapshot

    metrics = MetricStore()
    series = metrics.series("job", "input_rate_mb", retention=16 * DAY)
    pattern = WeeklyPattern(constant(8.0))
    now = 15 * DAY  # a Monday, two full weeks of history behind it
    t = 0.0
    while t <= now:
        series.record(t, pattern.rate(t))
        t += 600.0
    analyzer = PatternAnalyzer(metrics)
    analyzer.rate_per_thread("job", bootstrap=2.0)
    snapshot = make_snapshot(time=now, task_count=10, input_rate_mb=8.0)
    # 5 tasks * 2 MB/s = 10 MB/s covers the 8 MB/s weekday rate.
    assert analyzer.validate_downscale(snapshot, new_task_count=5).allowed
    # 3 tasks = 6 MB/s would survive a weekend but not a weekday: vetoed.
    assert not analyzer.validate_downscale(snapshot, new_task_count=3).allowed
