"""Tests for the traffic driver."""

import pytest

from repro.scribe import ScribeBus
from repro.sim import Engine
from repro.workloads import SkewSchedule, TrafficDriver
from repro.workloads.diurnal import constant


def setup(tick=60.0):
    engine = Engine()
    scribe = ScribeBus()
    scribe.create_category("cat", 4)
    driver = TrafficDriver(engine, scribe, tick=tick)
    return engine, scribe, driver


def test_appends_rate_times_dt():
    engine, scribe, driver = setup()
    driver.add_source("cat", constant(2.0))
    driver.start()
    engine.run_until(600.0)
    assert scribe.get_category("cat").total_head() == pytest.approx(1200.0)
    assert driver.total_appended_mb("cat") == pytest.approx(1200.0)


def test_multiple_sources_tracked_separately():
    engine, scribe, driver = setup()
    scribe.create_category("other", 2)
    driver.add_source("cat", constant(1.0))
    driver.add_source("other", constant(3.0))
    driver.start()
    engine.run_until(120.0)
    assert driver.total_appended_mb("cat") == pytest.approx(120.0)
    assert driver.total_appended_mb("other") == pytest.approx(360.0)
    assert driver.total_appended_mb() == pytest.approx(480.0)
    assert driver.source_names() == ["cat", "other"]


def test_duplicate_source_rejected():
    engine, scribe, driver = setup()
    driver.add_source("cat", constant(1.0))
    with pytest.raises(ValueError):
        driver.add_source("cat", constant(1.0))


def test_skew_pushed_to_category():
    engine, scribe, driver = setup()
    skew = SkewSchedule(4, [0.7, 0.1, 0.1, 0.1], start=0.0, end=120.0)
    driver.add_source("cat", constant(4.0), skew=skew)
    driver.start()
    engine.run_until(120.0)
    partitions = scribe.get_category("cat").partitions
    assert partitions[0].head > partitions[1].head
    # After the window, traffic is uniform again.
    head_before = [p.head for p in partitions]
    engine.run_until(240.0)
    deltas = [p.head - before for p, before in zip(partitions, head_before)]
    assert max(deltas) == pytest.approx(min(deltas))


def test_stop_halts_traffic():
    engine, scribe, driver = setup()
    driver.add_source("cat", constant(1.0))
    driver.start()
    engine.run_until(120.0)
    driver.stop()
    engine.run_until(600.0)
    assert driver.total_appended_mb() == pytest.approx(120.0)


def test_negative_rate_clamped():
    engine, scribe, driver = setup()
    driver.add_source("cat", lambda t: -5.0)
    driver.start()
    engine.run_until(120.0)
    assert scribe.get_category("cat").total_head() == 0.0


def test_invalid_tick_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        TrafficDriver(engine, ScribeBus(), tick=0.0)


def test_remove_source():
    engine, scribe, driver = setup()
    driver.add_source("cat", constant(1.0))
    driver.remove_source("cat")
    driver.start()
    engine.run_until(120.0)
    assert driver.total_appended_mb() == 0.0
