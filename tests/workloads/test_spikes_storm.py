"""Tests for spike, skew, and storm schedules."""

import pytest

from repro.workloads import SkewSchedule, SpikeSchedule, StormSchedule
from repro.workloads.diurnal import constant


class TestSpikes:
    def test_spike_multiplies_in_window(self):
        schedule = SpikeSchedule(constant(10.0))
        schedule.add(100.0, 200.0, factor=3.0)
        assert schedule.rate(50.0) == 10.0
        assert schedule.rate(150.0) == 30.0
        assert schedule.rate(200.0) == 10.0  # end exclusive

    def test_overlapping_spikes_compound(self):
        schedule = SpikeSchedule(constant(10.0))
        schedule.add(0.0, 100.0, factor=2.0)
        schedule.add(50.0, 150.0, factor=3.0)
        assert schedule.rate(75.0) == pytest.approx(60.0)

    def test_invalid_spike_rejected(self):
        schedule = SpikeSchedule(constant(1.0))
        with pytest.raises(ValueError):
            schedule.add(100.0, 100.0, factor=2.0)
        with pytest.raises(ValueError):
            schedule.add(0.0, 1.0, factor=-1.0)


class TestSkew:
    def test_weights_only_in_window(self):
        skew = SkewSchedule(2, [0.9, 0.1], start=100.0, end=200.0)
        assert skew.weights_at(50.0) is None
        assert skew.weights_at(150.0) == [0.9, 0.1]
        assert skew.weights_at(200.0) is None

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError):
            SkewSchedule(3, [1.0, 2.0], 0.0, 1.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            SkewSchedule(2, [1.0, 1.0], 10.0, 10.0)


class TestStorm:
    def test_surge_applies_during_storm(self):
        storm = StormSchedule(constant(100.0), start=10.0, end=20.0, surge=0.16)
        assert storm.rate(5.0) == 100.0
        assert storm.rate(15.0) == pytest.approx(116.0)
        assert storm.rate(25.0) == 100.0
        assert storm.active(15.0)
        assert not storm.active(25.0)

    def test_invalid_storm_rejected(self):
        with pytest.raises(ValueError):
            StormSchedule(constant(1.0), 10.0, 10.0)
        with pytest.raises(ValueError):
            StormSchedule(constant(1.0), 0.0, 1.0, surge=-0.5)
