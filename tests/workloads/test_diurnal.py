"""Tests for diurnal patterns and growth trends."""

import pytest

from repro.sim import SeededRng
from repro.workloads import DiurnalPattern, GrowthTrend
from repro.workloads.diurnal import DAY, constant, scaled


class TestDiurnalPattern:
    def test_rate_oscillates_around_base(self):
        pattern = DiurnalPattern(10.0, amplitude=0.3, daily_variation=0.0)
        rates = [pattern.rate(t) for t in range(0, int(DAY), 600)]
        assert min(rates) == pytest.approx(7.0, rel=0.01)
        assert max(rates) == pytest.approx(13.0, rel=0.01)

    def test_peak_rate(self):
        pattern = DiurnalPattern(10.0, amplitude=0.3)
        assert pattern.peak_rate() == pytest.approx(13.0)

    def test_day_over_day_within_variation(self):
        """"normally similar — within 1% variation on aggregate — to the
        workload at the same time in prior days"."""
        pattern = DiurnalPattern(10.0, daily_variation=0.01, rng=SeededRng(4))
        for hour in (0, 6, 12, 18):
            today = pattern.rate(hour * 3600.0)
            yesterday = pattern.rate(hour * 3600.0 + DAY)
            assert abs(today - yesterday) / today < 0.025

    def test_deterministic_per_seed(self):
        a = DiurnalPattern(10.0, rng=SeededRng(9))
        b = DiurnalPattern(10.0, rng=SeededRng(9))
        times = [t * 1000.0 for t in range(50)]
        assert [a.rate(t) for t in times] == [b.rate(t) for t in times]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiurnalPattern(-1.0)
        with pytest.raises(ValueError):
            DiurnalPattern(1.0, amplitude=1.0)

    def test_callable_interface(self):
        pattern = DiurnalPattern(10.0, daily_variation=0.0)
        assert pattern(0.0) == pattern.rate(0.0)


class TestGrowthTrend:
    def test_doubles_after_period(self):
        trend = GrowthTrend(constant(10.0), doubling_seconds=100.0)
        assert trend.rate(0.0) == pytest.approx(10.0)
        assert trend.rate(100.0) == pytest.approx(20.0)
        assert trend.rate(200.0) == pytest.approx(40.0)

    def test_figure_1_shape(self):
        """Traffic doubles over a 12-month interval (Fig. 1)."""
        year = 365.0 * DAY
        trend = GrowthTrend(constant(100.0), doubling_seconds=year)
        assert trend.rate(year) / trend.rate(0.0) == pytest.approx(2.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            GrowthTrend(constant(1.0), doubling_seconds=0.0)


def test_constant_and_scaled():
    flat = constant(5.0)
    assert flat(123.0) == 5.0
    assert scaled(flat, 2.0)(0.0) == 10.0
    with pytest.raises(ValueError):
        constant(-1.0)
