"""Tests for the Scuba Tailer fleet model (Fig. 5 calibration)."""

import pytest

from repro.metrics.aggregate import fraction_below
from repro.workloads import ScubaFleet


def test_fleet_is_reproducible():
    a = ScubaFleet(100, seed=3)
    b = ScubaFleet(100, seed=3)
    assert [p.base_rate_mb for p in a.profiles] == [
        p.base_rate_mb for p in b.profiles
    ]
    assert ScubaFleet(100, seed=4).profiles[0].base_rate_mb != (
        a.profiles[0].base_rate_mb
    )


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        ScubaFleet(0)


def test_figure_5a_cpu_distribution():
    """Over 80 % of tasks under one CPU thread; a small share above four."""
    fleet = ScubaFleet(3000, seed=1)
    cpus, __ = fleet.task_footprints()
    assert fraction_below(cpus, 1.0) > 0.80
    heavy = 1.0 - fraction_below(cpus, 4.0)
    assert 0.0 < heavy < 0.05, (
        "a small — but non-empty — percentage over four threads"
    )


def test_figure_5b_memory_distribution():
    """Every task ≥ ~0.4 GB; over 99 % under 2 GB."""
    fleet = ScubaFleet(3000, seed=1)
    __, memories = fleet.task_footprints()
    assert min(memories) >= 0.4
    assert fraction_below(memories, 2.0) > 0.99


def test_cpu_linear_in_traffic():
    """"CPU overhead has a near-linear relationship with the traffic
    volume"."""
    fleet = ScubaFleet(500, seed=2)
    for profile in fleet.profiles[:50]:
        assert profile.task_cpu_cores == pytest.approx(
            profile.per_task_rate_mb / 2.0
        )


def test_heavy_tables_go_multithreaded_then_split():
    fleet = ScubaFleet(2000, seed=5)
    multi_threaded = [p for p in fleet.profiles if p.threads_per_task > 1]
    assert multi_threaded, "the lognormal tail must produce heavy tables"
    split = [p for p in fleet.profiles if p.base_rate_mb > 12.0]
    assert all(p.task_count > 1 for p in split)
    for profile in fleet.profiles:
        assert profile.per_task_rate_mb <= 12.0 + 1e-9
        # Threads cover the per-task rate with 20% headroom.
        assert profile.threads_per_task * 2.0 * 0.8 >= (
            profile.per_task_rate_mb - 1e-9
        )


def test_job_specs_are_provisionable():
    fleet = ScubaFleet(20, seed=6)
    specs = fleet.job_specs()
    assert len(specs) == 20
    for spec, profile in zip(specs, fleet.profiles):
        assert spec.task_count == profile.task_count
        assert spec.resources_per_task.memory_gb > profile.task_memory_gb
        assert spec.rate_per_thread_mb == 2.0


def test_aggregates():
    fleet = ScubaFleet(100, seed=7)
    assert fleet.total_rate_mb() == pytest.approx(
        sum(p.base_rate_mb for p in fleet.profiles)
    )
    assert fleet.total_tasks() == sum(p.task_count for p in fleet.profiles)
