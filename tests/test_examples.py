"""Examples stay importable (full runs are exercised manually/CI-nightly)."""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 6, "the README promises several scenarios"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=lambda path: path.stem
)
def test_example_imports_cleanly(path):
    """Importing must not raise (main() is guarded, so nothing runs)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
