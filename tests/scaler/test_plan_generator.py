"""Tests for the Plan Generator's synthesized decisions."""

import pytest

from repro.cluster import ResourceVector
from repro.metrics import MetricStore
from repro.scaler import PatternAnalyzer, PlanGenerator, ResourceEstimator, SymptomDetector
from repro.scaler.plan_generator import Action
from repro.types import Priority
from tests.scaler.helpers import make_snapshot

CONTAINER = ResourceVector(cpu=10.0, memory_gb=26.0, disk_gb=400.0)


def make_generator(analyzer=None):
    analyzer = analyzer or PatternAnalyzer(MetricStore())
    return PlanGenerator(analyzer, CONTAINER), analyzer


def decide(snapshot, quiet=False, floor=Priority.LOW, p=2.0, analyzer=None):
    generator, analyzer = make_generator(analyzer)
    analyzer.rate_per_thread(snapshot.job_id, bootstrap=p)
    symptoms = SymptomDetector().detect(snapshot)
    estimate = ResourceEstimator().estimate(snapshot, p)
    return generator.decide(
        snapshot, symptoms, estimate,
        quiet_long_enough=quiet, priority_floor=floor,
    )


class TestVerticalFirst:
    def test_small_lag_scales_vertically(self):
        """Extra demand that fits within the thread limit grows threads,
        not task count (section V-E: vertical favored)."""
        snapshot = make_snapshot(
            time_lagged=200.0, input_rate_mb=12.0, task_count=4, threads=1,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UPSCALE_VERTICAL
        assert decision.task_count == 4
        assert decision.threads == 2

    def test_large_lag_goes_horizontal(self):
        snapshot = make_snapshot(
            time_lagged=500.0, input_rate_mb=100.0, task_count=4, threads=1,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UPSCALE_HORIZONTAL
        assert decision.task_count > 4
        assert decision.threads == 2, "threads maxed before adding tasks"

    def test_vertical_limit_is_fifth_of_container(self):
        generator, __ = make_generator()
        assert generator.vertical_limit.cpu == pytest.approx(2.0)
        assert generator.vertical_limit.memory_gb == pytest.approx(5.2)
        assert generator.max_threads == 2

    def test_task_count_limit_caps_horizontal(self):
        """The Fig. 8 guard: unprivileged jobs stop at their limit."""
        snapshot = make_snapshot(
            time_lagged=1000.0, input_rate_mb=1000.0,
            task_count=4, task_count_limit=32,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UPSCALE_HORIZONTAL
        assert decision.task_count == 32

    def test_input_partitions_cap_horizontal_scaling(self):
        """Tasks beyond the input category's partition count would idle,
        so the generator never scales past it."""
        snapshot = make_snapshot(
            time_lagged=1000.0, input_rate_mb=1000.0,
            task_count=4, task_count_limit=64, input_partitions=10,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UPSCALE_HORIZONTAL
        assert decision.task_count == 10

    def test_unknown_partitions_do_not_cap(self):
        snapshot = make_snapshot(
            time_lagged=1000.0, input_rate_mb=1000.0,
            task_count=4, task_count_limit=64, input_partitions=0,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.task_count > 10

    def test_at_limit_no_action(self):
        snapshot = make_snapshot(
            time_lagged=1000.0, input_rate_mb=1000.0,
            task_count=32, threads=2, task_count_limit=32,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.NONE
        assert "limit" in decision.reason


class TestLagPaths:
    def test_imbalanced_lag_rebalances_not_scales(self):
        """Algorithm 2 lines 3–4."""
        snapshot = make_snapshot(
            time_lagged=200.0, processing_rate_mb=4.0, task_rate_stdev=0.9,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.REBALANCE

    def test_lag_with_enough_resources_is_untriaged(self):
        """Symptoms without a resource explanation must not trigger
        scaling (section V-D)."""
        snapshot = make_snapshot(
            time_lagged=200.0, input_rate_mb=2.0, task_count=8,
        )
        decision = decide(snapshot, p=2.0)  # capacity 16 >> input 2
        assert decision.action == Action.UNTRIAGED

    def test_priority_floor_suppresses_upscale(self):
        snapshot = make_snapshot(
            time_lagged=200.0, input_rate_mb=100.0, priority=Priority.LOW,
        )
        decision = decide(snapshot, p=2.0, floor=Priority.HIGH)
        assert decision.action == Action.NONE
        assert "privileged" in decision.reason

    def test_privileged_job_scales_under_pressure(self):
        snapshot = make_snapshot(
            time_lagged=200.0, input_rate_mb=100.0, priority=Priority.CRITICAL,
        )
        decision = decide(snapshot, p=2.0, floor=Priority.HIGH)
        assert decision.action == Action.UPSCALE_HORIZONTAL


class TestOomPaths:
    def test_oom_grows_memory(self):
        snapshot = make_snapshot(oom_recently=True, memory_per_task_gb=1.0)
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.MEMORY_INCREASE
        assert decision.memory_per_task_gb == pytest.approx(1.5)
        assert decision.task_count == snapshot.task_count

    def test_oom_at_vertical_limit_goes_horizontal(self):
        snapshot = make_snapshot(
            oom_recently=True, memory_per_task_gb=5.0,
            stateful=True, state_key_cardinality=50_000_000,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UPSCALE_HORIZONTAL
        assert decision.task_count == 8

    def test_oom_horizontal_correlated_memory_reduction(self):
        """"if ... the number of tasks is increased, the memory allocated
        to each task can be reduced" — stateful memory shrinks per task."""
        snapshot = make_snapshot(
            oom_recently=True, memory_per_task_gb=5.0,
            stateful=True, state_key_cardinality=50_000_000,
            task_count=4,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UPSCALE_HORIZONTAL
        assert decision.memory_per_task_gb < 5.2  # below vertical cap
        assert decision.memory_per_task_gb < 5.0 * 1.5

    def test_oom_at_all_limits_is_untriaged(self):
        snapshot = make_snapshot(
            oom_recently=True, memory_per_task_gb=5.0,
            task_count=32, task_count_limit=32,
        )
        decision = decide(snapshot, p=2.0)
        assert decision.action == Action.UNTRIAGED


class TestDownscalePaths:
    def test_quiet_overprovisioned_job_downscales(self):
        snapshot = make_snapshot(task_count=16, input_rate_mb=4.0)
        decision = decide(snapshot, quiet=True, p=2.0)
        assert decision.action == Action.DOWNSCALE
        assert decision.task_count == 3  # ceil(4/2 * 1.2)

    def test_not_quiet_no_downscale(self):
        snapshot = make_snapshot(task_count=16, input_rate_mb=4.0)
        decision = decide(snapshot, quiet=False, p=2.0)
        assert decision.action == Action.NONE

    def test_downscale_never_below_floor(self):
        """"It prevents downscaling decisions from causing a healthy job to
        become unhealthy"."""
        snapshot = make_snapshot(task_count=5, input_rate_mb=8.0)
        decision = decide(snapshot, quiet=True, p=2.0)
        # floor = ceil(8/2) = 4; steady with margin = ceil(4*1.2) = 5 = n.
        assert decision.action == Action.NONE

    def test_estimate_above_current_adjusts_p_and_skips(self):
        """The Pattern Analyzer's resource-adjustment rule: n' > n means P
        was too small."""
        analyzer = PatternAnalyzer(MetricStore())
        snapshot = make_snapshot(
            task_count=2, input_rate_mb=8.0, processing_rate_mb=8.0,
            running_tasks=2,
        )
        decision = decide(snapshot, quiet=True, p=1.0, analyzer=analyzer)
        assert decision.action == Action.NONE
        assert "adjusted P" in decision.reason
        assert analyzer.rate_per_thread("job", 1.0) == pytest.approx(4.0)

    def test_downscale_recorded_for_violation_attribution(self):
        analyzer = PatternAnalyzer(MetricStore())
        snapshot = make_snapshot(task_count=16, input_rate_mb=4.0)
        decision = decide(snapshot, quiet=True, p=2.0, analyzer=analyzer)
        assert decision.action == Action.DOWNSCALE
        # A violation right after is attributed to the downscale.
        lagging = make_snapshot(
            time=snapshot.time + 300.0, task_count=3,
            input_rate_mb=4.0, time_lagged=300.0,
        )
        assert analyzer.observe_slo_violation(lagging)

    def test_violation_after_downscale_restores_capacity(self):
        analyzer = PatternAnalyzer(MetricStore())
        quiet_snapshot = make_snapshot(task_count=16, input_rate_mb=4.0)
        decide(quiet_snapshot, quiet=True, p=2.0, analyzer=analyzer)
        lagging = make_snapshot(
            time=quiet_snapshot.time + 300.0, task_count=3,
            input_rate_mb=6.0, time_lagged=300.0, backlog_mb=1000.0,
        )
        decision = decide(lagging, p=2.0, analyzer=analyzer)
        assert decision.action in (
            Action.UPSCALE_VERTICAL, Action.UPSCALE_HORIZONTAL
        )
        assert "restoring" in decision.reason
