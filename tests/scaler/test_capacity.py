"""Tests for the Capacity Manager."""

import pytest

from repro import JobSpec, PlatformConfig, ResourceVector, Turbine
from repro.scaler.capacity import CapacityConfig
from repro.types import JobState, Priority


def capacity_platform(num_hosts=2, seed=9, **capacity_kw):
    config = PlatformConfig(num_shards=16, containers_per_host=2)
    platform = Turbine.create(num_hosts=num_hosts, seed=seed, config=config)
    platform.attach_scaler()
    platform.attach_capacity_manager(
        CapacityConfig(interval=120.0, **capacity_kw)
    )
    platform.start()
    return platform


def provision_heavy(platform, job_id, priority, tasks=8, memory=5.0):
    platform.provision(
        JobSpec(
            job_id=job_id, input_category=f"cat-{job_id}", task_count=tasks,
            priority=priority,
            resources_per_task=ResourceVector(cpu=1.0, memory_gb=memory),
        )
    )


def test_utilization_reflects_reservations():
    platform = capacity_platform()
    assert platform.capacity_manager.cluster_utilization() == 0.0
    provision_heavy(platform, "job", Priority.NORMAL)
    platform.run_for(minutes=3)
    assert platform.capacity_manager.cluster_utilization() > 0.0


def test_pressure_sets_priority_floor():
    platform = capacity_platform(pressure_threshold=0.05)
    provision_heavy(platform, "job", Priority.NORMAL)
    platform.run_for(minutes=6)
    assert platform.capacity_manager.under_pressure
    assert platform.scaler.priority_floor == Priority.HIGH
    kinds = [event.kind for event in platform.capacity_manager.events]
    assert "pressure_on" in kinds


def test_pressure_releases_when_load_drops():
    platform = capacity_platform(pressure_threshold=0.05)
    provision_heavy(platform, "job", Priority.NORMAL)
    platform.run_for(minutes=6)
    assert platform.capacity_manager.under_pressure
    # Remove the load entirely.
    platform.actuator.stop_tasks("job")
    platform.job_store.set_state("job", JobState.STOPPED)
    platform.run_for(minutes=6)
    assert not platform.capacity_manager.under_pressure
    assert platform.scaler.priority_floor == Priority.LOW


def test_instability_stops_lowest_priority_first():
    platform = capacity_platform(
        pressure_threshold=0.03, instability_threshold=0.06
    )
    provision_heavy(platform, "low-job", Priority.LOW, tasks=8)
    provision_heavy(platform, "high-job", Priority.HIGH, tasks=2)
    platform.run_for(minutes=6)
    stopped = platform.capacity_manager.stopped_jobs
    assert "low-job" in stopped
    assert "high-job" not in stopped
    assert platform.job_store.state_of("low-job") == JobState.STOPPED
    assert platform.job_store.state_of("high-job") == JobState.RUNNING


def test_privileged_jobs_never_stopped():
    platform = capacity_platform(
        pressure_threshold=0.01, instability_threshold=0.02
    )
    provision_heavy(platform, "critical", Priority.CRITICAL, tasks=8)
    platform.run_for(minutes=6)
    assert platform.job_store.state_of("critical") == JobState.RUNNING


def test_stopped_jobs_resume_when_capacity_returns():
    platform = capacity_platform(
        pressure_threshold=0.04, instability_threshold=0.10
    )
    provision_heavy(platform, "low-job", Priority.LOW, tasks=8)
    provision_heavy(platform, "high-job", Priority.HIGH, tasks=4, memory=3.0)
    platform.run_for(minutes=6)
    assert "low-job" in platform.capacity_manager.stopped_jobs
    # The pressure source goes away entirely.
    platform.actuator.stop_tasks("high-job")
    platform.job_store.set_state("high-job", JobState.STOPPED)
    platform.run_for(minutes=10)
    assert platform.job_store.state_of("low-job") == JobState.RUNNING
    platform.run_for(minutes=4)
    assert platform.tasks_of_job("low-job"), "tasks re-created after resume"


def test_lend_hosts_removes_from_cluster():
    platform = capacity_platform(num_hosts=4)
    lent = platform.capacity_manager.lend_hosts(2)
    assert len(lent) == 2
    assert len(platform.cluster.live_hosts()) == 2
