"""End-to-end imbalanced-input handling (Algorithm 2 lines 3-4).

A skewed producer overloads some tasks of a job while others idle; lag
develops although total capacity is sufficient. The scaler must detect the
imbalance and rebalance the input traffic rather than add resources.
"""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.scaler import AutoScalerConfig
from repro.scaler.plan_generator import Action


def test_skewed_input_rebalanced_not_scaled():
    platform = Turbine.create(
        num_hosts=3, seed=61,
        config=PlatformConfig(num_shards=32, containers_per_host=2,
                              step_interval=30.0),
    )
    platform.attach_scaler(AutoScalerConfig(interval=120.0))
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=2.0),
        partitions=8,
    )
    platform.run_for(minutes=3)

    # Skew: task 0's two partitions receive almost all the traffic.
    category = platform.scribe.get_category("cat")
    category.set_weights([4.0, 4.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1])
    for __ in range(30):
        category.append(6.0 * 60.0)  # 6 MB/s total, capacity 8 MB/s
        platform.run_for(minutes=1)

    rebalances = [
        action for action in platform.scaler.actions
        if action.action == Action.REBALANCE
    ]
    assert rebalances, "the scaler must rebalance the skewed input"
    # After the rebalance, the weights are uniform again and lag drains.
    platform_weights = category._weights
    assert platform_weights is None, "traffic split restored to uniform"
    for __ in range(15):
        category.append(6.0 * 60.0)
        platform.run_for(minutes=1)
    assert platform.metrics.latest("job", "time_lagged") < 90.0
    horizontal = [
        action for action in platform.scaler.actions
        if action.action == Action.UPSCALE_HORIZONTAL
    ]
    assert not horizontal, (
        "imbalance is fixed by rebalancing, not by adding tasks"
    )
