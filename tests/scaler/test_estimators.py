"""Tests for the resource estimators (equations 2 and 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScalerError
from repro.scaler import ResourceEstimator
from tests.scaler.helpers import make_snapshot


def test_equation_2_steady_state():
    """X=10 MB/s, P=2 MB/s, k=1 → raw need 5 tasks; margin 20% → 6."""
    estimator = ResourceEstimator(cpu_margin=0.2)
    snapshot = make_snapshot(input_rate_mb=10.0, threads=1)
    estimate = estimator.estimate(snapshot, rate_per_thread=2.0)
    assert estimate.min_task_count == 5
    assert estimate.steady_task_count == 6


def test_threads_scale_capacity_linearly():
    """"The processing rate increases linearly with the number of tasks
    and threads" — doubling k halves the task count."""
    estimator = ResourceEstimator(cpu_margin=0.0)
    one = estimator.estimate(
        make_snapshot(input_rate_mb=8.0, threads=1), rate_per_thread=2.0
    )
    two = estimator.estimate(
        make_snapshot(input_rate_mb=8.0, threads=2), rate_per_thread=2.0
    )
    assert one.steady_task_count == 4
    assert two.steady_task_count == 2


def test_equation_3_includes_backlog():
    """B=3600 MB recovered over t=3600 s adds 1 MB/s of required rate."""
    estimator = ResourceEstimator(cpu_margin=0.0)
    snapshot = make_snapshot(
        input_rate_mb=4.0, backlog_mb=3600.0, slo_recovery_seconds=3600.0,
    )
    estimate = estimator.estimate(snapshot, rate_per_thread=1.0)
    assert estimate.steady_task_count == 4
    assert estimate.recovery_task_count == 5


def test_recovery_never_below_steady():
    estimator = ResourceEstimator()
    snapshot = make_snapshot(input_rate_mb=10.0, backlog_mb=0.0)
    estimate = estimator.estimate(snapshot, rate_per_thread=2.0)
    assert estimate.recovery_task_count >= estimate.steady_task_count


def test_idle_job_needs_one_task():
    estimator = ResourceEstimator()
    estimate = estimator.estimate(
        make_snapshot(input_rate_mb=0.0), rate_per_thread=2.0
    )
    assert estimate.min_task_count == 1
    assert estimate.steady_task_count == 1


def test_stateless_memory_is_base_plus_buffer():
    estimator = ResourceEstimator(memory_margin=0.0)
    estimate = estimator.estimate(
        make_snapshot(input_rate_mb=0.0), rate_per_thread=2.0
    )
    # base 0.4 + 2 MB/s * 5 s / 1000 = 0.41 GB
    assert estimate.memory_per_task_gb == pytest.approx(0.41)
    assert estimate.disk_per_task_gb == 0.0


def test_stateful_memory_proportional_to_keys():
    """"the memory size is proportional to the key cardinality"."""
    estimator = ResourceEstimator(memory_margin=0.0)
    small = estimator.estimate(
        make_snapshot(stateful=True, state_key_cardinality=1_000_000),
        rate_per_thread=2.0,
    )
    large = estimator.estimate(
        make_snapshot(stateful=True, state_key_cardinality=4_000_000),
        rate_per_thread=2.0,
    )
    assert large.memory_per_task_gb > small.memory_per_task_gb
    assert large.disk_per_task_gb > small.disk_per_task_gb


def test_network_estimate_scales_with_throughput():
    """The estimator covers all four dimensions the paper names —
    CPU, memory, network bandwidth, and disk I/O (section V-B)."""
    estimator = ResourceEstimator(cpu_margin=0.0)
    quiet = estimator.estimate(
        make_snapshot(input_rate_mb=2.0), rate_per_thread=2.0
    )
    busy = estimator.estimate(
        make_snapshot(input_rate_mb=20.0), rate_per_thread=2.0
    )
    assert quiet.network_per_task_mbps > 0
    # Per-task throughput is ~P in both cases, so per-task network is
    # similar; total network (× task count) scales with input.
    assert (
        busy.network_per_task_mbps * busy.recovery_task_count
        > quiet.network_per_task_mbps * quiet.recovery_task_count * 5
    )


def test_invalid_rate_rejected():
    with pytest.raises(ScalerError):
        ResourceEstimator().estimate(make_snapshot(), rate_per_thread=0.0)


def test_negative_margin_rejected():
    with pytest.raises(ScalerError):
        ResourceEstimator(cpu_margin=-0.1)


class TestProperties:
    @given(
        input_rate=st.floats(min_value=0.0, max_value=1000.0),
        rate=st.floats(min_value=0.1, max_value=50.0),
        threads=st.integers(min_value=1, max_value=4),
    )
    def test_capacity_at_steady_count_covers_input(self, input_rate, rate, threads):
        """The floor estimate always provides at least the input rate."""
        estimator = ResourceEstimator(cpu_margin=0.0)
        snapshot = make_snapshot(input_rate_mb=input_rate, threads=threads)
        estimate = estimator.estimate(snapshot, rate_per_thread=rate)
        capacity = estimate.min_task_count * threads * rate
        assert capacity >= input_rate - 1e-6

    @given(
        backlog=st.floats(min_value=0.0, max_value=100000.0),
        recovery=st.floats(min_value=60.0, max_value=86400.0),
    )
    def test_recovery_capacity_drains_backlog(self, backlog, recovery):
        estimator = ResourceEstimator(cpu_margin=0.0)
        snapshot = make_snapshot(
            input_rate_mb=5.0, backlog_mb=backlog,
            slo_recovery_seconds=recovery,
        )
        estimate = estimator.estimate(snapshot, rate_per_thread=2.0)
        capacity = estimate.recovery_task_count * 2.0
        assert capacity >= 5.0 + backlog / recovery - 1e-6
