"""Unit tests for JobSnapshot construction from the metric store."""

import pytest

from repro.jobs import JobSpec
from repro.metrics import MetricStore
from repro.scaler.snapshot import bootstrap_rate_hint, snapshot_job
from repro.types import Priority


def config_for(**spec_overrides):
    spec = JobSpec(
        job_id="job", input_category="cat", task_count=4,
        threads_per_task=2, rate_per_thread_mb=3.0, **spec_overrides,
    )
    return spec.to_provisioner_config()


def store_with_metrics(now=1000.0):
    metrics = MetricStore()
    for t in range(0, int(now) + 1, 60):
        metrics.record("job", "input_rate_mb", float(t), 6.0)
    metrics.record("job", "processing_rate_mb", now, 5.5)
    metrics.record("job", "bytes_lagged_mb", now, 120.0)
    metrics.record("job", "time_lagged", now, 20.0)
    metrics.record("job", "task_rate_stdev", now, 0.4)
    metrics.record("job", "running_tasks", now, 4.0)
    return metrics


def test_snapshot_reads_config_fields():
    snapshot = snapshot_job("job", config_for(), store_with_metrics(), 1000.0)
    assert snapshot.task_count == 4
    assert snapshot.threads == 2
    assert snapshot.task_count_limit == 32
    assert snapshot.priority == Priority.NORMAL
    assert snapshot.slo_lag_seconds == 90.0


def test_snapshot_reads_metrics():
    snapshot = snapshot_job("job", config_for(), store_with_metrics(), 1000.0)
    assert snapshot.input_rate_mb == pytest.approx(6.0)
    assert snapshot.processing_rate_mb == 5.5
    assert snapshot.backlog_mb == 120.0
    assert snapshot.time_lagged == 20.0
    assert snapshot.running_tasks == 4


def test_input_rate_averaged_over_window():
    metrics = MetricStore()
    # Old rate 2.0, recent 10 minutes at 8.0.
    for t in range(0, 401, 100):
        metrics.record("job", "input_rate_mb", float(t), 2.0)
    for t in range(500, 1001, 100):
        metrics.record("job", "input_rate_mb", float(t), 8.0)
    snapshot = snapshot_job("job", config_for(), metrics, 1000.0)
    # Trailing 600 s window: one old sample (t=400, 2.0) plus six at 8.0.
    assert snapshot.input_rate_mb == pytest.approx((2.0 + 6 * 8.0) / 7)


def test_missing_metrics_default_to_zero():
    snapshot = snapshot_job("job", config_for(), MetricStore(), 1000.0)
    assert snapshot.input_rate_mb == 0.0
    assert snapshot.running_tasks == 0
    assert not snapshot.lagging


def test_oom_window():
    metrics = store_with_metrics()
    metrics.record("job", "oom_events", 900.0, 1.0)
    fresh = snapshot_job("job", config_for(), metrics, 1000.0)
    assert fresh.oom_recently
    # Hours later the event has aged out of the window.
    metrics.record("job", "input_rate_mb", 9000.0, 6.0)
    old = snapshot_job("job", config_for(), metrics, 9000.0)
    assert not old.oom_recently


def test_lagging_property_uses_job_slo():
    from repro.types import SLO

    config = config_for(slo=SLO(max_lag_seconds=10.0))
    metrics = store_with_metrics()
    snapshot = snapshot_job("job", config, metrics, 1000.0)
    assert snapshot.time_lagged == 20.0
    assert snapshot.lagging, "20 s lag exceeds the 10 s SLO"


def test_per_task_rate():
    snapshot = snapshot_job("job", config_for(), store_with_metrics(), 1000.0)
    assert snapshot.per_task_rate == pytest.approx(5.5 / 4)


def test_bootstrap_rate_hint():
    assert bootstrap_rate_hint(config_for()) == 3.0
    assert bootstrap_rate_hint({}) == 2.0  # default P
