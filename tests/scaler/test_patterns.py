"""Tests for the Pattern Analyzer (P adjustment + 14-day history)."""

import pytest

from repro.metrics import MetricStore
from repro.scaler import PatternAnalyzer
from tests.scaler.helpers import make_snapshot

DAY = 86400.0


def analyzer_with_history(days=3, rate=4.0, peak_rate=None, peak_hour=None):
    """A metric store with per-minute input rates over several days.

    ``peak_rate``/``peak_hour`` inject a daily traffic peak.
    """
    metrics = MetricStore()
    series = metrics.series("job", "input_rate_mb", retention=15 * DAY)
    now = days * DAY
    t = 0.0
    while t <= now:
        value = rate
        if peak_rate is not None and peak_hour is not None:
            hour = (t % DAY) / 3600.0
            if peak_hour <= hour < peak_hour + 1:
                value = peak_rate
        series.record(t, value)
        t += 60.0
    return PatternAnalyzer(metrics), metrics, now


class TestRateEstimation:
    def test_bootstrap_on_first_sight(self):
        analyzer = PatternAnalyzer(MetricStore())
        assert analyzer.rate_per_thread("job", bootstrap=2.5) == 2.5

    def test_bootstrap_sticky(self):
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=2.5)
        assert analyzer.rate_per_thread("job", bootstrap=99.0) == 2.5

    def test_set_rate_validates(self):
        analyzer = PatternAnalyzer(MetricStore())
        with pytest.raises(ValueError):
            analyzer.set_rate_per_thread("job", 0.0)

    def test_underestimate_raises_p(self):
        """Observed per-task throughput above estimated P pulls P up."""
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=1.0)
        snapshot = make_snapshot(processing_rate_mb=12.0, running_tasks=4)
        analyzer.observe_underestimate(snapshot)  # observed 3.0 per task
        assert analyzer.rate_per_thread("job", 1.0) == pytest.approx(3.0)
        assert analyzer.adjustment_count("job") == 1

    def test_underestimate_never_lowers_p(self):
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=10.0)
        snapshot = make_snapshot(processing_rate_mb=4.0, running_tasks=4)
        analyzer.observe_underestimate(snapshot)
        assert analyzer.rate_per_thread("job", 10.0) == 10.0

    def test_saturated_throughput_raises_p(self):
        """Runtime refinement: a lagging (saturated) job's observed
        per-thread rate is a lower bound on the true P."""
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=1.0)
        snapshot = make_snapshot(
            processing_rate_mb=10.0, running_tasks=4, time_lagged=300.0,
        )
        assert analyzer.observe_saturated_throughput(snapshot)
        assert analyzer.rate_per_thread("job", 1.0) == pytest.approx(2.5)

    def test_mild_lag_never_lowers_p(self):
        """Transient lag is not evidence against the estimate."""
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=5.0)
        snapshot = make_snapshot(
            processing_rate_mb=4.0, running_tasks=4, time_lagged=100.0,
        )
        assert not analyzer.observe_saturated_throughput(snapshot)
        assert analyzer.rate_per_thread("job", 5.0) == 5.0

    def test_degraded_job_never_lowers_p(self):
        """Missing tasks explain the low throughput; P is not to blame."""
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=5.0)
        snapshot = make_snapshot(
            processing_rate_mb=2.0, running_tasks=2, task_count=4,
            time_lagged=500.0,
        )
        assert not analyzer.observe_saturated_throughput(snapshot)
        assert analyzer.rate_per_thread("job", 5.0) == 5.0

    def test_persistent_lag_with_full_tasks_lowers_p(self):
        """An over-estimated P hides a capacity shortage as 'untriaged';
        a *streak* of saturated-lag observations pulls the estimate down."""
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=4.0)
        snapshot = make_snapshot(
            processing_rate_mb=8.0, running_tasks=4, task_count=4,
            time_lagged=500.0,  # >> 2x the 90 s SLO
        )
        assert not analyzer.observe_saturated_throughput(snapshot)
        assert not analyzer.observe_saturated_throughput(snapshot)
        assert analyzer.rate_per_thread("job", 4.0) == 4.0, "not yet"
        assert analyzer.observe_saturated_throughput(snapshot)
        # Pulled to the midpoint of (4.0, observed 2.0) on the 3rd strike.
        assert analyzer.rate_per_thread("job", 4.0) == pytest.approx(3.0)

    def test_streak_resets_on_healthy_reading(self):
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=4.0)
        lagging = make_snapshot(
            processing_rate_mb=8.0, running_tasks=4, task_count=4,
            time_lagged=500.0,
        )
        healthy = make_snapshot(
            processing_rate_mb=8.0, running_tasks=4, task_count=4,
            time_lagged=0.0,
        )
        analyzer.observe_saturated_throughput(lagging)
        analyzer.observe_saturated_throughput(lagging)
        analyzer.observe_saturated_throughput(healthy)  # resets the streak
        analyzer.observe_saturated_throughput(lagging)
        analyzer.observe_saturated_throughput(lagging)
        assert analyzer.rate_per_thread("job", 4.0) == 4.0

    def test_saturation_of_unknown_job_ignored(self):
        analyzer = PatternAnalyzer(MetricStore())
        assert not analyzer.observe_saturated_throughput(make_snapshot())

    def test_slo_violation_after_downscale_lowers_p(self):
        """"the estimated value of P must have been greater than the actual
        max throughput and P needs to be adjusted to a value between X/n
        and P"."""
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=4.0)
        before = make_snapshot(time=1000.0, task_count=8)
        analyzer.record_downscale(before, new_count=4)
        after = make_snapshot(
            time=1500.0, task_count=4, input_rate_mb=8.0, time_lagged=200.0
        )
        attributed = analyzer.observe_slo_violation(after)
        assert attributed
        new_p = analyzer.rate_per_thread("job", 4.0)
        floor = 8.0 / 4  # X/n with k=1
        assert floor < new_p < 4.0

    def test_old_downscale_not_blamed(self):
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=4.0)
        analyzer.record_downscale(make_snapshot(time=0.0), new_count=2)
        late = make_snapshot(time=10000.0, time_lagged=500.0)
        assert not analyzer.observe_slo_violation(late)

    def test_violation_without_downscale_not_attributed(self):
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=4.0)
        assert not analyzer.observe_slo_violation(make_snapshot(time_lagged=500.0))


class TestHistoricalValidation:
    def test_flat_history_allows_downscale(self):
        analyzer, __, now = analyzer_with_history(days=3, rate=4.0)
        analyzer.rate_per_thread("job", bootstrap=2.0)
        snapshot = make_snapshot(time=now, task_count=8, input_rate_mb=4.0)
        verdict = analyzer.validate_downscale(snapshot, new_task_count=3)
        assert verdict.allowed

    def test_daily_peak_vetoes_downscale(self):
        """"it verifies that this reduction will not cause another round of
        updates in the next x hours" — a peak within the validation window
        in prior days blocks the shrink."""
        analyzer, __, now = analyzer_with_history(
            days=3, rate=4.0, peak_rate=20.0, peak_hour=1.0,
        )
        analyzer.rate_per_thread("job", bootstrap=2.0)
        # It is midnight; the peak arrives at 01:00, inside the 4 h window.
        snapshot = make_snapshot(time=now, task_count=12, input_rate_mb=4.0)
        verdict = analyzer.validate_downscale(snapshot, new_task_count=3)
        assert not verdict.allowed
        assert "peak" in verdict.reason

    def test_peak_outside_window_ignored(self):
        analyzer, __, now = analyzer_with_history(
            days=3, rate=4.0, peak_rate=20.0, peak_hour=8.0,
        )
        analyzer.rate_per_thread("job", bootstrap=2.0)
        # Peak at 08:00 is outside the default 4-hour validation window.
        snapshot = make_snapshot(time=now, task_count=12, input_rate_mb=4.0)
        verdict = analyzer.validate_downscale(snapshot, new_task_count=3)
        assert verdict.allowed

    def test_outlier_traffic_disables_history(self):
        """Current traffic far from the same window in prior days →
        pattern-based decisions disabled (conservative veto)."""
        metrics = MetricStore()
        series = metrics.series("job", "input_rate_mb", retention=15 * DAY)
        now = 3 * DAY
        t = 0.0
        while t <= now:
            # History at 4 MB/s; last 30 minutes spike to 40 MB/s.
            value = 40.0 if t > now - 1800.0 else 4.0
            series.record(t, value)
            t += 60.0
        analyzer = PatternAnalyzer(metrics)
        analyzer.rate_per_thread("job", bootstrap=2.0)
        snapshot = make_snapshot(time=now, task_count=30, input_rate_mb=40.0)
        verdict = analyzer.validate_downscale(snapshot, new_task_count=25)
        assert not verdict.allowed
        assert "disabled" in verdict.reason

    def test_young_job_without_history_uses_estimate(self):
        analyzer = PatternAnalyzer(MetricStore())
        analyzer.rate_per_thread("job", bootstrap=2.0)
        snapshot = make_snapshot(time=100.0, task_count=8, input_rate_mb=4.0)
        ok = analyzer.validate_downscale(snapshot, new_task_count=3)
        assert ok.allowed  # 3 tasks * 2 MB/s = 6 > 4
        too_far = analyzer.validate_downscale(snapshot, new_task_count=1)
        assert not too_far.allowed  # 1 task * 2 = 2 < 4
