"""Shared helpers for scaler tests: snapshot builders with sane defaults."""

from repro.scaler.snapshot import JobSnapshot
from repro.types import Priority


def make_snapshot(**overrides) -> JobSnapshot:
    """A healthy steady-state snapshot; override fields per test."""
    defaults = dict(
        job_id="job",
        time=1000.0,
        task_count=4,
        threads=1,
        task_count_limit=32,
        memory_per_task_gb=1.0,
        cpu_per_task=1.0,
        stateful=False,
        state_key_cardinality=0,
        priority=Priority.NORMAL,
        slo_lag_seconds=90.0,
        slo_recovery_seconds=3600.0,
        input_rate_mb=4.0,
        processing_rate_mb=4.0,
        backlog_mb=0.0,
        time_lagged=0.0,
        task_rate_stdev=0.1,
        oom_recently=False,
        running_tasks=4,
    )
    defaults.update(overrides)
    return JobSnapshot(**defaults)
