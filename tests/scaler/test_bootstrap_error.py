"""The scaler converges even when the staging-period P hint is wrong.

The staging profile is only a bootstrap; runtime refinement (saturation
observations upward, post-downscale violations downward) corrects it — the
continuous-estimation direction the paper's section IX points at.
"""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.scaler import AutoScalerConfig
from repro.workloads import TrafficDriver


def run_with_bootstrap_error(error, seed=67):
    platform = Turbine.create(
        num_hosts=4, seed=seed,
        config=PlatformConfig(num_shards=64, containers_per_host=2,
                              step_interval=30.0),
    )
    platform.attach_scaler(
        AutoScalerConfig(interval=120.0, bootstrap_error=error)
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2,
                rate_per_thread_mb=2.0, task_count_limit=64),
        partitions=64,
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=30.0)
    driver.add_source("cat", lambda t: 20.0)
    driver.start()
    # The overestimated case needs several correction rounds (each wants a
    # streak of saturated-lag observations) before capacity is right.
    platform.run_for(hours=5)
    config = platform.job_service.expected_config("job")
    capacity = config["task_count"] * config.get("threads_per_task", 1) * 2.0
    lag = platform.metrics.latest("job", "time_lagged") or 0.0
    estimated_p = platform.scaler.analyzer.rate_per_thread("job", 0.1)
    return capacity, lag, estimated_p


def test_underestimated_p_corrected_upward():
    """Bootstrap says P=1 (half the truth). Saturation observations pull
    the estimate up toward 2, so the job is not wildly over-provisioned."""
    capacity, lag, estimated_p = run_with_bootstrap_error(0.5)
    assert lag < 90.0, "the job must end within SLO"
    assert estimated_p > 1.3, "P refined upward from the 1.0 bootstrap"
    assert capacity <= 20.0 * 2.5, "no massive over-provisioning"


def test_accurate_p_baseline():
    capacity, lag, estimated_p = run_with_bootstrap_error(1.0)
    assert lag < 90.0
    assert capacity >= 20.0


def test_overestimated_p_still_serves():
    """Bootstrap says P=4 (double the truth): the first sizing is too
    small, lag persists, and the scaler keeps adding capacity until the
    job serves — estimates are advisory, symptoms are ground truth."""
    capacity, lag, estimated_p = run_with_bootstrap_error(2.0)
    assert lag < 90.0
    assert capacity >= 20.0
