"""End-to-end Auto Scaler tests on a live simulated platform."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.scaler import AutoScalerConfig
from repro.scaler.plan_generator import Action


def scaled_platform(num_hosts=3, downscale_after=1800.0, seed=11, **scaler_kw):
    config = PlatformConfig(num_shards=32, containers_per_host=2)
    platform = Turbine.create(num_hosts=num_hosts, seed=seed, config=config)
    platform.attach_scaler(
        AutoScalerConfig(downscale_after=downscale_after, **scaler_kw)
    )
    platform.start()
    return platform


def feed(platform, category, rate_mb, minutes):
    """Append ``rate_mb`` MB/s of traffic for ``minutes`` minutes."""
    for __ in range(int(minutes)):
        platform.scribe.get_category(category).append(rate_mb * 60.0)
        platform.run_for(minutes=1)


class TestUpscaling:
    def test_backlog_triggers_upscale(self):
        platform = scaled_platform()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=2.0, task_count_limit=32),
        )
        platform.run_for(minutes=3)
        # 30 MB/s input >> 2 tasks * 2 MB/s capacity → lag grows.
        feed(platform, "cat", rate_mb=30.0, minutes=20)
        config = platform.job_service.expected_config("job")
        capacity = (
            config["task_count"] * config["threads_per_task"] * 2.0
        )
        assert capacity >= 30.0, f"scaled capacity {capacity} must cover input"
        upscales = [
            action for action in platform.scaler.actions
            if action.action in (
                Action.UPSCALE_HORIZONTAL, Action.UPSCALE_VERTICAL
            )
        ]
        assert upscales

    def test_backlog_drains_after_upscale(self):
        platform = scaled_platform()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=5.0, task_count_limit=32,
                    slo=__import__("repro.types", fromlist=["SLO"]).SLO(
                        max_lag_seconds=90.0, recovery_seconds=600.0)),
        )
        platform.run_for(minutes=3)
        platform.scribe.get_category("cat").append(3000.0)  # a big dump
        feed(platform, "cat", rate_mb=5.0, minutes=40)
        assert platform.job_lag_mb("job") < 300.0, "backlog mostly drained"

    def test_task_count_limit_respected(self):
        platform = scaled_platform()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=1.0, task_count_limit=8),
        )
        platform.run_for(minutes=3)
        feed(platform, "cat", rate_mb=100.0, minutes=20)
        assert platform.job_service.expected_config("job")["task_count"] <= 8

    def test_oncall_limit_lift_unlocks_scaling(self):
        """The Fig. 8 scenario: the operator lifts the limit and the
        scaler continues upward."""
        from repro.jobs import ConfigLevel

        platform = scaled_platform()
        # The category has plenty of partitions; only the task-count
        # limit holds the job back (the Fig. 8 situation).
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=1.0, task_count_limit=8),
            partitions=128,
        )
        platform.run_for(minutes=3)
        feed(platform, "cat", rate_mb=50.0, minutes=15)
        assert platform.job_service.expected_config("job")["task_count"] <= 8
        platform.job_service.patch(
            "job", ConfigLevel.ONCALL, {"task_count_limit": 128}
        )
        feed(platform, "cat", rate_mb=50.0, minutes=15)
        assert platform.job_service.expected_config("job")["task_count"] > 8


class TestOom:
    def test_oom_bumps_memory(self):
        platform = scaled_platform()
        # 0.45 GB reservation but the buffer model needs more at high rate.
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=50.0,
                    resources_per_task=__import__(
                        "repro.cluster", fromlist=["ResourceVector"]
                    ).ResourceVector(cpu=1.0, memory_gb=0.45)),
        )
        platform.run_for(minutes=3)
        feed(platform, "cat", rate_mb=60.0, minutes=15)
        assert any(
            manager.oom_events > 0
            for manager in platform.task_managers.values()
        ), "the tight reservation must OOM under load"
        memory = platform.job_service.expected_config("job")["resources"][
            "memory_gb"
        ]
        assert memory > 0.45, "scaler must raise the reservation"


class TestDownscaling:
    def test_quiet_job_downscales(self):
        platform = scaled_platform(downscale_after=1200.0)
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=16,
                    rate_per_thread_mb=2.0),
        )
        platform.run_for(minutes=3)
        feed(platform, "cat", rate_mb=4.0, minutes=45)
        final = platform.job_service.expected_config("job")["task_count"]
        assert final < 16, "16 tasks for 4 MB/s at P=2 is over-provisioned"
        assert final >= 2, "never below the floor ceil(4/2)"

    def test_busy_job_never_downscaled(self):
        platform = scaled_platform(downscale_after=600.0)
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=4,
                    rate_per_thread_mb=2.0),
        )
        platform.run_for(minutes=3)
        feed(platform, "cat", rate_mb=7.9, minutes=30)
        final = platform.job_service.expected_config("job")["task_count"]
        assert final >= 4, "job running near capacity must not shrink"


class TestUntriaged:
    def test_lag_without_resource_cause_alerts(self):
        """A job that lags despite ample capacity (a simulated dependency
        failure: tasks stopped via direct kill) produces an untriaged
        report, not a scaling action."""
        platform = scaled_platform()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=8,
                    rate_per_thread_mb=10.0),
        )
        platform.run_for(minutes=3)
        # Stop the data plane behind the control plane's back: lag grows
        # although the estimates say capacity is plentiful.
        for manager in platform.task_managers.values():
            for task in manager.tasks.values():
                task.stop()
        feed(platform, "cat", rate_mb=4.0, minutes=15)
        assert platform.scaler.untriaged, "must report an untriaged problem"
        horizontal = [
            action for action in platform.scaler.actions
            if action.action == Action.UPSCALE_HORIZONTAL
        ]
        assert not horizontal, "untriaged lag must not add tasks"
