"""Tests for the reactive (first-generation) scaler baseline."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.scaler import ReactiveAutoScaler, ReactiveConfig


def reactive_platform(downscale_after=1200.0, seed=5):
    config = PlatformConfig(num_shards=16, containers_per_host=2)
    platform = Turbine.create(num_hosts=3, seed=seed, config=config)
    platform.scaler = ReactiveAutoScaler(
        platform.engine, platform.job_service, platform.metrics,
        platform.scribe,
        config=ReactiveConfig(downscale_after=downscale_after),
    )
    platform.start()
    return platform


def feed(platform, category, rate_mb, minutes):
    for __ in range(int(minutes)):
        platform.scribe.get_category(category).append(rate_mb * 60.0)
        platform.run_for(minutes=1)


def test_lag_doubles_task_count():
    platform = reactive_platform()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2,
                rate_per_thread_mb=2.0),
    )
    platform.run_for(minutes=3)
    feed(platform, "cat", rate_mb=30.0, minutes=10)
    upscales = [a for a in platform.scaler.actions if a.kind == "upscale"]
    assert upscales
    assert platform.job_service.expected_config("job")["task_count"] >= 4


def test_reactive_converges_slower_than_needed():
    """The motivating flaw: fixed-step doubling takes several rounds to
    reach the required capacity — no estimate shortcuts it."""
    platform = reactive_platform()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=1,
                rate_per_thread_mb=1.0, task_count_limit=64),
    )
    platform.run_for(minutes=3)
    feed(platform, "cat", rate_mb=30.0, minutes=12)
    upscales = [a for a in platform.scaler.actions if a.kind == "upscale"]
    assert len(upscales) >= 3, "doubling needs many rounds: 1→2→4→8…"


def test_quiet_job_shrinks_one_task_at_a_time():
    platform = reactive_platform(downscale_after=900.0)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=6,
                rate_per_thread_mb=5.0),
    )
    platform.run_for(minutes=3)
    feed(platform, "cat", rate_mb=2.0, minutes=40)
    downscales = [a for a in platform.scaler.actions if a.kind == "downscale"]
    assert downscales
    final = platform.job_service.expected_config("job")["task_count"]
    assert final < 6


def test_reactive_can_overshoot_downscale():
    """Without a resource floor, the reactive scaler keeps shrinking a
    quiet job until it lags — the incorrect-downscale flaw (section V-A).
    The proactive scaler's floor prevents exactly this."""
    platform = reactive_platform(downscale_after=600.0)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=2.0),
    )
    platform.run_for(minutes=3)
    # Steady 6 MB/s needs ceil(6/2)=3 tasks; reactive will still try 2.
    feed(platform, "cat", rate_mb=6.0, minutes=90)
    counts = [
        a.detail for a in platform.scaler.actions if a.kind == "downscale"
    ]
    lag_series = platform.metrics.series("job", "time_lagged")
    max_lag = max(
        (value for __, value in lag_series.all_points()), default=0.0
    )
    assert counts, "reactive scaler must have attempted downscales"
    assert max_lag > 90.0, "overshoot should cause an SLO violation"
