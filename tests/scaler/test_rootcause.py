"""Tests for the automatic root-cause analyzer (section V-D taxonomy)."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.jobs import ConfigLevel
from repro.scaler.rootcause import Cause, RootCauseAnalyzer
from repro.workloads import TrafficDriver


def build(num_jobs=4, seed=31):
    platform = Turbine.create(
        num_hosts=3, seed=seed,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(num_jobs):
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=4, rate_per_thread_mb=4.0),
        )
        driver.add_source(f"cat-{index}", lambda t: 4.0)
    driver.start()
    analyzer = RootCauseAnalyzer(
        platform.job_service, platform.shard_manager, platform.metrics
    )
    platform.run_for(minutes=5)
    analyzer.observe_configs(platform.now)
    platform.run_for(minutes=35)  # past the "recent update" window
    return platform, analyzer


def stall_one_task(platform, job_id):
    for manager in platform.task_managers.values():
        for task in manager.tasks.values():
            if task.spec.job_id == job_id:
                task.stop()
                return task.spec.task_id
    raise AssertionError("no task found")


class TestDiagnosis:
    def test_single_stalled_task_blamed_on_hardware(self):
        platform, analyzer = build()
        suspect = stall_one_task(platform, "job-0")
        platform.run_for(minutes=5)
        diagnosis = analyzer.diagnose("job-0", platform.now)
        assert diagnosis.cause == Cause.SINGLE_TASK_HARDWARE
        assert diagnosis.suspect_task == suspect

    def test_recent_package_change_blamed_on_update(self):
        platform, analyzer = build()
        analyzer.observe_configs(platform.now)
        platform.job_service.patch(
            "job-1", ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "2.0-bad"}},
        )
        platform.run_for(minutes=5)
        analyzer.observe_configs(platform.now)
        platform.run_for(minutes=5)
        diagnosis = analyzer.diagnose("job-1", platform.now)
        assert diagnosis.cause == Cause.BAD_USER_UPDATE
        assert "2.0-bad" in diagnosis.evidence

    def test_cluster_wide_lag_blamed_on_dependency(self):
        platform, analyzer = build()
        # Everything stalls at once — the downstream-dependency signature.
        for manager in platform.task_managers.values():
            for task in manager.tasks.values():
                task.stop()
        platform.run_for(minutes=10)
        diagnosis = analyzer.diagnose("job-2", platform.now)
        assert diagnosis.cause == Cause.DEPENDENCY_FAILURE

    def test_no_signature_is_unknown(self):
        platform, analyzer = build()
        diagnosis = analyzer.diagnose("job-3", platform.now)
        assert diagnosis.cause == Cause.UNKNOWN

    def test_provisioning_is_not_an_update(self):
        platform, analyzer = build()
        diagnosis = analyzer.diagnose("job-0", platform.now)
        assert diagnosis.cause != Cause.BAD_USER_UPDATE


class TestMitigation:
    def test_hardware_diagnosis_moves_the_shard(self):
        platform, analyzer = build()
        suspect = stall_one_task(platform, "job-0")
        platform.run_for(minutes=5)
        diagnosis = analyzer.diagnose("job-0", platform.now)
        source = platform.shard_manager.assignment.get(
            __import__("repro.tasks.shard", fromlist=["shard_id_for_task"])
            .shard_id_for_task(suspect, platform.shard_manager.num_shards)
        )
        assert analyzer.mitigate(diagnosis)
        assert diagnosis.mitigated
        from repro.tasks.shard import shard_id_for_task

        new_owner = platform.shard_manager.assignment[
            shard_id_for_task(suspect, platform.shard_manager.num_shards)
        ]
        assert new_owner != source
        # The restarted task processes again.
        platform.run_for(minutes=5)
        tasks = platform.tasks_of_job("job-0")
        assert suspect in tasks

    def test_bad_update_mitigation_raises_limit(self):
        platform, analyzer = build()
        analyzer.observe_configs(platform.now)
        platform.job_service.patch(
            "job-1", ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "2.0-bad"}},
        )
        platform.run_for(minutes=2)
        analyzer.observe_configs(platform.now)
        diagnosis = analyzer.diagnose("job-1", platform.now)
        assert analyzer.mitigate(diagnosis)
        config = platform.job_service.expected_config("job-1")
        assert config["task_count_limit"] == 128

    def test_dependency_failure_not_mitigated(self):
        """"allocating more resources does not help in the case of
        dependency failures" — the analyzer must refuse to act."""
        platform, analyzer = build()
        for manager in platform.task_managers.values():
            for task in manager.tasks.values():
                task.stop()
        platform.run_for(minutes=10)
        before = platform.job_service.expected_config("job-2")
        diagnosis = analyzer.diagnose("job-2", platform.now)
        assert not analyzer.mitigate(diagnosis)
        assert diagnosis.mitigation == "alert operator"
        assert platform.job_service.expected_config("job-2") == before
