"""Tests for the symptom detectors."""

import pytest

from repro.scaler import SymptomDetector
from tests.scaler.helpers import make_snapshot


def test_healthy_job_has_no_symptoms():
    symptoms = SymptomDetector().detect(make_snapshot())
    assert symptoms.healthy
    assert not symptoms.lagging
    assert not symptoms.imbalanced
    assert not symptoms.oom


def test_lag_above_slo_detected():
    snapshot = make_snapshot(time_lagged=120.0, slo_lag_seconds=90.0)
    assert SymptomDetector().detect(snapshot).lagging


def test_lag_below_slo_not_detected():
    snapshot = make_snapshot(time_lagged=60.0, slo_lag_seconds=90.0)
    assert not SymptomDetector().detect(snapshot).lagging


def test_custom_slo_respected():
    snapshot = make_snapshot(time_lagged=40.0, slo_lag_seconds=30.0)
    assert SymptomDetector().detect(snapshot).lagging


def test_imbalance_detected_by_rate_spread():
    # mean per-task rate = 1.0, stdev = 0.8 → ratio 0.8 > 0.5
    snapshot = make_snapshot(processing_rate_mb=4.0, task_rate_stdev=0.8)
    assert SymptomDetector().detect(snapshot).imbalanced


def test_balanced_input_not_flagged():
    snapshot = make_snapshot(processing_rate_mb=4.0, task_rate_stdev=0.2)
    assert not SymptomDetector().detect(snapshot).imbalanced


def test_single_task_never_imbalanced():
    snapshot = make_snapshot(
        task_count=1, running_tasks=1, task_rate_stdev=100.0
    )
    assert not SymptomDetector().detect(snapshot).imbalanced


def test_idle_job_never_imbalanced():
    snapshot = make_snapshot(processing_rate_mb=0.0, task_rate_stdev=1.0)
    assert not SymptomDetector().detect(snapshot).imbalanced


def test_oom_detected():
    assert SymptomDetector().detect(make_snapshot(oom_recently=True)).oom


def test_custom_threshold():
    detector = SymptomDetector(imbalance_threshold=2.0)
    snapshot = make_snapshot(processing_rate_mb=4.0, task_rate_stdev=1.5)
    assert not detector.detect(snapshot).imbalanced


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        SymptomDetector(imbalance_threshold=0.0)
