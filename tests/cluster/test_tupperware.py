"""Unit tests for the Tupperware cluster stand-in."""

import pytest

from repro.cluster import ResourceVector, TupperwareCluster
from repro.errors import CapacityError, ClusterError


def small_cluster(hosts=3):
    cluster = TupperwareCluster()
    cluster.add_hosts(hosts)
    return cluster


class TestHostManagement:
    def test_add_hosts_names_sequentially(self):
        cluster = small_cluster(3)
        assert sorted(cluster.hosts) == ["host-0", "host-1", "host-2"]

    def test_add_duplicate_host_rejected(self):
        cluster = small_cluster(1)
        with pytest.raises(ClusterError):
            cluster.add_host("host-0")

    def test_fail_host_kills_its_containers(self):
        cluster = small_cluster(2)
        container = cluster.allocate_container(host_id="host-0")
        cluster.fail_host("host-0")
        assert not container.alive
        assert container.container_id not in cluster.containers
        assert len(cluster.live_hosts()) == 1

    def test_fail_host_notifies_listeners(self):
        cluster = small_cluster(2)
        failed = []
        cluster.on_host_failure.append(failed.append)
        cluster.fail_host("host-1")
        assert failed == ["host-1"]

    def test_fail_dead_host_is_noop(self):
        cluster = small_cluster(1)
        notified = []
        cluster.on_host_failure.append(notified.append)
        cluster.fail_host("host-0")
        cluster.fail_host("host-0")
        assert notified == ["host-0"]

    def test_recover_host_rejoins_pool(self):
        cluster = small_cluster(2)
        cluster.fail_host("host-0")
        cluster.recover_host("host-0")
        assert len(cluster.live_hosts()) == 2

    def test_remove_host_decommissions(self):
        cluster = small_cluster(2)
        cluster.remove_host("host-0")
        assert "host-0" not in cluster.hosts

    def test_unknown_host_rejected(self):
        with pytest.raises(ClusterError):
            small_cluster(1).fail_host("nope")


class TestContainerAllocation:
    def test_allocation_spreads_across_hosts(self):
        cluster = small_cluster(3)
        containers = [cluster.allocate_container() for __ in range(3)]
        hosts_used = {container.host_id for container in containers}
        assert len(hosts_used) == 3, "least-allocated host should be picked"

    def test_allocation_on_specific_host(self):
        cluster = small_cluster(2)
        container = cluster.allocate_container(host_id="host-1")
        assert container.host_id == "host-1"

    def test_allocation_fails_when_full(self):
        cluster = TupperwareCluster()
        cluster.add_host("tiny", ResourceVector(cpu=4.0, memory_gb=20.0))
        with pytest.raises(CapacityError):
            cluster.allocate_container()  # default container needs 6 CPU

    def test_allocate_fleet(self):
        cluster = small_cluster(3)
        fleet = cluster.allocate_fleet(containers_per_host=2)
        assert len(fleet) == 6
        per_host = {}
        for container in fleet:
            per_host[container.host_id] = per_host.get(container.host_id, 0) + 1
        assert all(count == 2 for count in per_host.values())

    def test_release_returns_resources(self):
        cluster = small_cluster(1)
        container = cluster.allocate_container()
        host = cluster.hosts["host-0"]
        assert host.allocated.cpu > 0
        cluster.release_container(container.container_id)
        assert host.allocated.is_zero()
        assert not container.alive

    def test_release_unknown_rejected(self):
        with pytest.raises(ClusterError):
            small_cluster(1).release_container("nope")


class TestAggregates:
    def test_total_capacity_counts_live_hosts_only(self):
        cluster = small_cluster(2)
        full = cluster.total_capacity()
        cluster.fail_host("host-0")
        assert cluster.total_capacity().cpu == pytest.approx(full.cpu / 2)

    def test_total_reserved_tracks_tasks(self):
        cluster = small_cluster(1)
        container = cluster.allocate_container()
        container.reserve("t1", ResourceVector(cpu=2.0))
        assert cluster.total_reserved().cpu == 2.0

    def test_live_listings_are_sorted(self):
        cluster = small_cluster(3)
        cluster.allocate_fleet(1)
        host_ids = [host.host_id for host in cluster.live_hosts()]
        assert host_ids == sorted(host_ids)
        container_ids = [c.container_id for c in cluster.live_containers()]
        assert container_ids == sorted(container_ids)
