"""Unit tests for hosts and Turbine containers."""

import pytest

from repro.cluster import Host, ResourceVector, TurbineContainer
from repro.errors import CapacityError, ClusterError


def make_container(cid="c0", cpu=6.0, mem=26.0):
    return TurbineContainer(cid, ResourceVector(cpu=cpu, memory_gb=mem))


class TestHost:
    def test_default_capacity_matches_paper_fleet(self):
        host = Host("h0")
        assert host.capacity.memory_gb == 256.0
        assert host.capacity.cpu >= 48.0

    def test_attach_accounts_allocation(self):
        host = Host("h0")
        container = make_container()
        host.attach(container)
        assert host.allocated.cpu == 6.0
        assert host.free.cpu == host.capacity.cpu - 6.0
        assert container.host_id == "h0"

    def test_attach_duplicate_rejected(self):
        host = Host("h0")
        container = make_container()
        host.attach(container)
        with pytest.raises(ClusterError):
            host.attach(container)

    def test_attach_beyond_capacity_rejected(self):
        host = Host("h0", ResourceVector(cpu=4.0, memory_gb=16.0))
        with pytest.raises(ClusterError):
            host.attach(make_container(cpu=6.0))

    def test_detach_returns_container(self):
        host = Host("h0")
        container = make_container()
        host.attach(container)
        assert host.detach("c0") is container
        assert host.free == host.capacity

    def test_detach_unknown_rejected(self):
        with pytest.raises(ClusterError):
            Host("h0").detach("nope")

    def test_fail_kills_containers(self):
        host = Host("h0")
        container = make_container()
        host.attach(container)
        host.fail()
        assert not host.alive
        assert not container.alive

    def test_attach_to_dead_host_rejected(self):
        host = Host("h0")
        host.fail()
        with pytest.raises(ClusterError):
            host.attach(make_container())

    def test_recover_comes_back_empty(self):
        host = Host("h0")
        host.attach(make_container())
        host.fail()
        host.recover()
        assert host.alive
        assert not host.containers

    def test_can_fit(self):
        host = Host("h0", ResourceVector(cpu=10.0, memory_gb=52.0))
        assert host.can_fit(ResourceVector(cpu=6.0, memory_gb=26.0))
        host.attach(make_container())
        assert host.can_fit(ResourceVector(cpu=4.0, memory_gb=26.0))
        assert not host.can_fit(ResourceVector(cpu=5.0, memory_gb=26.0))


class TestTurbineContainer:
    def test_reserve_and_release(self):
        container = make_container()
        container.reserve("t1", ResourceVector(cpu=1.0, memory_gb=2.0))
        assert container.reserved.cpu == 1.0
        assert container.available.cpu == 5.0
        released = container.release("t1")
        assert released.cpu == 1.0
        assert container.reserved.is_zero()

    def test_duplicate_reservation_rejected(self):
        container = make_container()
        container.reserve("t1", ResourceVector(cpu=1.0))
        with pytest.raises(CapacityError):
            container.reserve("t1", ResourceVector(cpu=1.0))

    def test_overcommit_allowed(self):
        """Turbine tolerates transient over-commitment; the balancer fixes it."""
        container = make_container(cpu=2.0)
        container.reserve("t1", ResourceVector(cpu=1.5))
        container.reserve("t2", ResourceVector(cpu=1.5))
        assert container.utilization() > 1.0

    def test_resize_changes_reservation(self):
        container = make_container()
        container.reserve("t1", ResourceVector(cpu=1.0))
        container.resize("t1", ResourceVector(cpu=3.0))
        assert container.reserved.cpu == 3.0

    def test_resize_unknown_task_rejected(self):
        with pytest.raises(CapacityError):
            make_container().resize("nope", ResourceVector(cpu=1.0))

    def test_release_unknown_task_rejected(self):
        with pytest.raises(CapacityError):
            make_container().release("nope")

    def test_kill_clears_reservations(self):
        container = make_container()
        container.reserve("t1", ResourceVector(cpu=1.0))
        container.kill()
        assert not container.alive
        assert not container.reservations

    def test_reserve_on_dead_container_rejected(self):
        container = make_container()
        container.kill()
        with pytest.raises(ClusterError):
            container.reserve("t1", ResourceVector(cpu=1.0))

    def test_reboot_comes_back_empty_and_alive(self):
        container = make_container()
        container.reserve("t1", ResourceVector(cpu=1.0))
        container.reboot()
        assert container.alive
        assert not container.reservations

    def test_utilization_dominant_share(self):
        container = make_container(cpu=4.0, mem=8.0)
        container.reserve("t1", ResourceVector(cpu=1.0, memory_gb=6.0))
        assert container.utilization() == pytest.approx(0.75)
