"""Unit and property tests for ResourceVector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import ResourceVector

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.builds(ResourceVector, cpu=finite, memory_gb=finite, disk_gb=finite)


def test_zero_is_identity():
    v = ResourceVector(cpu=1.0, memory_gb=2.0)
    assert v + ResourceVector.zero() == v
    assert ResourceVector.zero().is_zero()


def test_addition_componentwise():
    a = ResourceVector(cpu=1.0, memory_gb=2.0, disk_gb=3.0, network_mbps=4.0)
    b = ResourceVector(cpu=10.0, memory_gb=20.0, disk_gb=30.0, network_mbps=40.0)
    total = a + b
    assert total == ResourceVector(11.0, 22.0, 33.0, 44.0)


def test_subtraction_can_go_negative():
    a = ResourceVector(cpu=1.0)
    b = ResourceVector(cpu=2.0)
    assert (a - b).cpu == -1.0
    assert (a - b).any_negative()


def test_clamped_non_negative():
    v = ResourceVector(cpu=-1.0, memory_gb=2.0)
    clamped = v.clamped_non_negative()
    assert clamped.cpu == 0.0
    assert clamped.memory_gb == 2.0


def test_scaled():
    v = ResourceVector(cpu=2.0, memory_gb=4.0)
    assert v.scaled(0.5) == ResourceVector(cpu=1.0, memory_gb=2.0)


def test_component_max():
    a = ResourceVector(cpu=1.0, memory_gb=9.0)
    b = ResourceVector(cpu=5.0, memory_gb=2.0)
    assert a.component_max(b) == ResourceVector(cpu=5.0, memory_gb=9.0)


def test_fits_within():
    small = ResourceVector(cpu=1.0, memory_gb=1.0)
    big = ResourceVector(cpu=2.0, memory_gb=2.0)
    assert small.fits_within(big)
    assert not big.fits_within(small)
    assert small.fits_within(small), "a vector fits within itself"


def test_utilization_is_dominant_share():
    load = ResourceVector(cpu=1.0, memory_gb=8.0)
    cap = ResourceVector(cpu=4.0, memory_gb=16.0)
    assert load.utilization_of(cap) == pytest.approx(0.5)  # memory dominates


def test_utilization_skips_zero_capacity_dimensions():
    load = ResourceVector(cpu=1.0)
    cap = ResourceVector(cpu=2.0)  # memory/disk/network capacity are zero
    assert load.utilization_of(cap) == pytest.approx(0.5)


def test_utilization_of_zero_capacity_is_zero():
    assert ResourceVector(cpu=1.0).utilization_of(ResourceVector.zero()) == 0.0


def test_dict_round_trip():
    v = ResourceVector(cpu=1.5, memory_gb=2.5, disk_gb=3.5, network_mbps=4.5)
    assert ResourceVector.from_dict(v.as_dict()) == v


def test_from_dict_partial_defaults_to_zero():
    v = ResourceVector.from_dict({"cpu": 2.0})
    assert v == ResourceVector(cpu=2.0)


def test_from_dict_unknown_dimension_rejected():
    with pytest.raises(ValueError):
        ResourceVector.from_dict({"gpu": 1.0})


def test_repr_compact():
    assert "cpu=1" in repr(ResourceVector(cpu=1.0))
    assert repr(ResourceVector.zero()) == "ResourceVector(0)"


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors, vectors, vectors)
    def test_addition_associates(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        for (__, lv), (__, rv) in zip(left.items(), right.items()):
            assert lv == pytest.approx(rv)

    @given(vectors, vectors)
    def test_sum_fits_within_itself(self, a, b):
        assert a.fits_within(a + b)

    @given(vectors)
    def test_sub_then_add_recovers(self, a):
        b = ResourceVector(cpu=1.0, memory_gb=1.0)
        recovered = (a - b) + b
        for (__, orig), (__, rec) in zip(a.items(), recovered.items()):
            assert orig == pytest.approx(rec, abs=1e-6)

    @given(vectors)
    def test_utilization_at_capacity_is_one(self, v):
        if not v.is_zero():
            assert v.utilization_of(v) == pytest.approx(1.0)

    @given(vectors, st.floats(min_value=0.0, max_value=100.0))
    def test_scaling_is_linear_in_utilization(self, v, factor):
        cap = ResourceVector(cpu=100.0, memory_gb=100.0, disk_gb=100.0,
                             network_mbps=100.0)
        base = v.utilization_of(cap)
        assert v.scaled(factor).utilization_of(cap) == pytest.approx(
            base * factor, rel=1e-6, abs=1e-9
        )
