"""Unit tests for failure injection."""

import pytest

from repro.cluster import FailureInjector, FailurePlan, TupperwareCluster
from repro.sim import Engine


def setup():
    engine = Engine(seed=1)
    cluster = TupperwareCluster()
    cluster.add_hosts(5)
    return engine, cluster, FailureInjector(engine, cluster)


def test_scripted_failure_and_recovery():
    engine, cluster, injector = setup()
    injector.schedule(FailurePlan("host-0", fail_at=10.0, recover_at=20.0))
    engine.run_until(15.0)
    assert not cluster.hosts["host-0"].alive
    engine.run_until(25.0)
    assert cluster.hosts["host-0"].alive
    kinds = [(r.kind, r.time) for r in injector.history]
    assert kinds == [("fail", 10.0), ("recover", 20.0)]


def test_failure_without_recovery():
    engine, cluster, injector = setup()
    injector.schedule(FailurePlan("host-1", fail_at=5.0))
    engine.run_until(100.0)
    assert not cluster.hosts["host-1"].alive


def test_recover_before_fail_rejected():
    with pytest.raises(ValueError):
        FailurePlan("h", fail_at=10.0, recover_at=5.0)


def test_schedule_all():
    engine, cluster, injector = setup()
    injector.schedule_all(
        [FailurePlan("host-0", 1.0), FailurePlan("host-1", 2.0)]
    )
    engine.run_until(3.0)
    assert len(cluster.live_hosts()) == 3


def test_failure_of_decommissioned_host_ignored():
    engine, cluster, injector = setup()
    injector.schedule(FailurePlan("host-0", fail_at=10.0))
    cluster.remove_host("host-0")
    engine.run_until(20.0)  # must not raise
    assert not injector.history  # nothing recorded for a removed host


def test_random_failures_fail_and_recover_hosts():
    engine, cluster, injector = setup()
    injector.enable_random_failures(
        mean_time_between_failures=100.0, mean_time_to_recover=50.0
    )
    engine.run_until(2000.0)
    fails = [r for r in injector.history if r.kind == "fail"]
    recoveries = [r for r in injector.history if r.kind == "recover"]
    assert len(fails) >= 5
    assert len(recoveries) >= 1


def test_random_failures_deterministic_per_seed():
    def run(seed):
        engine = Engine(seed=seed)
        cluster = TupperwareCluster()
        cluster.add_hosts(5)
        injector = FailureInjector(engine, cluster)
        injector.enable_random_failures(100.0, 50.0)
        engine.run_until(1000.0)
        return [(r.host_id, r.time, r.kind) for r in injector.history]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_scripted_failures_carry_label():
    engine, cluster, injector = setup()
    injector.schedule(
        FailurePlan("host-0", fail_at=10.0, recover_at=20.0), label="drill"
    )
    engine.run_until(25.0)
    assert [(r.kind, r.label) for r in injector.history] == [
        ("fail", "drill"), ("recover", "drill"),
    ]


def test_random_failures_carry_label():
    engine, cluster, injector = setup()
    injector.enable_random_failures(
        mean_time_between_failures=100.0, mean_time_to_recover=50.0,
        label="storm-drill",
    )
    engine.run_until(2000.0)
    assert injector.history
    assert all(r.label == "storm-drill" for r in injector.history)


def test_random_failure_label_defaults():
    engine, cluster, injector = setup()
    injector.enable_random_failures(100.0, 50.0)
    engine.run_until(2000.0)
    assert injector.history
    assert all(r.label == "random-failures" for r in injector.history)


def test_fail_now_and_recover_now_record_label():
    engine, cluster, injector = setup()
    injector.fail_now("host-2", label="chaos:shard-manager-outage")
    assert not cluster.hosts["host-2"].alive
    injector.recover_now("host-2", label="chaos:shard-manager-outage")
    assert cluster.hosts["host-2"].alive
    assert [r.label for r in injector.history] == [
        "chaos:shard-manager-outage"
    ] * 2


def test_labels_render_in_timeline():
    """The label must survive into the merged operator timeline."""
    from repro import Turbine
    from repro.ops.timeline import IncidentTimeline

    platform = Turbine.create(num_hosts=2, seed=3)
    platform.start()
    platform.failures.schedule(
        FailurePlan("host-1", fail_at=30.0), label="gc-drill"
    )
    platform.run_for(minutes=2)
    events = IncidentTimeline(platform).events(kinds=["host-fail"])
    assert any(e.detail == "host-1 [gc-drill]" for e in events)


def test_invalid_mtbf_rejected():
    engine, cluster, injector = setup()
    with pytest.raises(ValueError):
        injector.enable_random_failures(0.0, 50.0)
    with pytest.raises(ValueError):
        injector.enable_random_failures(100.0, -1.0)
