"""Conservation properties of the data plane.

Under arbitrary traffic and stepping sequences: bytes are never invented
(processed ≤ appended), checkpoints never pass partition heads, and each
byte is processed exactly once across restarts and task handoffs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs import JobSpec
from repro.scribe import ScribeBus
from repro.tasks import RunningTask, TaskSpec


def build(task_count=2, partitions=4, rate=2.0):
    scribe = ScribeBus()
    scribe.ensure_category("cat", partitions)
    config = JobSpec(
        job_id="job", input_category="cat", task_count=task_count,
        rate_per_thread_mb=rate,
    ).to_provisioner_config()
    tasks = [
        RunningTask(TaskSpec.from_job_config("job", index, config), scribe)
        for index in range(task_count)
    ]
    return tasks, scribe


# One action: (kind, amount) — append bytes or step for some seconds.
actions = st.lists(
    st.tuples(
        st.sampled_from(["append", "step", "restart"]),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=50, deadline=None)
@given(sequence=actions)
def test_bytes_conserved_under_arbitrary_schedules(sequence):
    tasks, scribe = build()
    category = scribe.get_category("cat")
    appended = 0.0
    for kind, amount in sequence:
        if kind == "append":
            category.append(amount)
            appended += amount
        elif kind == "step":
            for task in tasks:
                task.step(amount)
        else:
            for task in tasks:
                task.restart()
        processed = sum(task.total_processed_mb for task in tasks)
        assert processed <= appended + 1e-6, "bytes must not be invented"
        for partition in category.partitions:
            offset = scribe.checkpoints.get("job", partition.partition_id)
            assert offset <= partition.head + 1e-6

    # Drain fully: afterwards processed == appended exactly once.
    for __ in range(200):
        if all(task.bytes_lagged_mb() < 1e-9 for task in tasks):
            break
        for task in tasks:
            task.step(60.0)
    processed = sum(task.total_processed_mb for task in tasks)
    assert processed == pytest.approx(appended, rel=1e-6, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    splits=st.lists(
        st.floats(min_value=0.5, max_value=30.0), min_size=2, max_size=8
    )
)
def test_handoff_between_incarnations_is_exactly_once(splits):
    """A task stopped and re-created (shard movement) processes each byte
    exactly once, because progress lives in the checkpoint store."""
    tasks, scribe = build(task_count=1)
    category = scribe.get_category("cat")
    category.append(100.0)
    total = 0.0
    current = tasks[0]
    for dt in splits:
        total += current.step(dt)
        current.stop()
        current = RunningTask(current.spec, scribe)  # new incarnation
    while current.bytes_lagged_mb() > 1e-9:
        total += current.step(60.0)
    assert total == pytest.approx(100.0)
