"""Edge cases of the shard movement and heartbeat protocol."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.errors import DegradedModeError


def small_platform():
    platform = Turbine.create(
        num_hosts=2, seed=83,
        config=PlatformConfig(num_shards=8, containers_per_host=2),
    )
    platform.start()
    platform.provision(JobSpec(job_id="job", input_category="cat", task_count=4))
    platform.run_for(minutes=3)
    return platform


class TestTaskManagerEdges:
    def test_duplicate_add_shard_is_idempotent(self):
        platform = small_platform()
        manager = next(
            m for m in platform.task_managers.values() if m.assigned_shards
        )
        shard = sorted(manager.assigned_shards)[0]
        tasks_before = dict(manager.tasks)
        manager.add_shard(shard)
        assert manager.tasks.keys() == tasks_before.keys()
        for task_id, task in manager.tasks.items():
            assert task is tasks_before[task_id], "tasks must not restart"

    def test_drop_unknown_shard_is_safe(self):
        platform = small_platform()
        manager = next(iter(platform.task_managers.values()))
        manager.drop_shard("shard-99999")  # not assigned here

    def test_force_kill_unknown_shard_is_safe(self):
        platform = small_platform()
        manager = next(iter(platform.task_managers.values()))
        manager.force_kill_shard("shard-99999")

    def test_shutdown_stops_everything(self):
        platform = small_platform()
        manager = next(
            m for m in platform.task_managers.values() if m.tasks
        )
        manager.shutdown()
        assert not manager.tasks
        assert manager.container.reservations == {}


class TestShardManagerEdges:
    def test_heartbeat_from_unknown_container_rejected(self):
        platform = small_platform()
        with pytest.raises(DegradedModeError):
            platform.shard_manager.heartbeat("turbine-unknown")

    def test_rebalance_with_no_managers_is_noop(self):
        platform = small_platform()
        for manager in list(platform.task_managers.values()):
            platform.shard_manager.unregister_container(manager.container_id)
        before = dict(platform.shard_manager.assignment)
        platform.shard_manager.rebalance()
        assert platform.shard_manager.assignment == before

    def test_failover_with_no_survivors_defers(self):
        """With zero live containers, orphaned shards stay mapped and are
        picked up once capacity returns."""
        platform = small_platform()
        for host in list(platform.cluster.live_hosts()):
            platform.cluster.fail_host(host.host_id)
        platform.run_for(minutes=2)  # heartbeats stale, failovers fire
        events = platform.shard_manager.failover_events
        assert events, "failovers must still be recorded"
        assert all(e.shards_moved == 0 for e in events[-2:]) or any(
            e.shards_moved == 0 for e in events
        )
        # Capacity returns; the next rebalance re-places everything.
        for host in list(platform.cluster.hosts.values()):
            platform.recover_host(host.host_id)
        platform.run_for(minutes=35)
        assert len(platform.tasks_of_job("job")) == 4

    def test_unregister_then_heartbeat_degraded(self):
        platform = small_platform()
        manager = next(iter(platform.task_managers.values()))
        platform.shard_manager.unregister_container(manager.container_id)
        with pytest.raises(DegradedModeError):
            platform.shard_manager.heartbeat(manager.container_id)
