"""Tests for the TurbineActuator (jobs↔tasks seam)."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.errors import SyncError


def platform_with_job(task_count=4):
    platform = Turbine.create(
        num_hosts=2, seed=3,
        config=PlatformConfig(num_shards=8, containers_per_host=2),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=task_count)
    )
    platform.run_for(minutes=3)
    return platform


def test_apply_settings_regenerates_specs():
    platform = platform_with_job()
    config = platform.job_service.expected_config("job")
    config["package"]["version"] = "3.0"
    platform.actuator.apply_settings("job", config)
    specs = platform.task_service.specs_of("job")
    assert all(spec.package_version == "3.0" for spec in specs)


def test_stop_tasks_is_synchronous_and_idempotent():
    platform = platform_with_job()
    assert platform.tasks_of_job("job")
    platform.actuator.stop_tasks("job")
    assert platform.tasks_of_job("job") == []
    assert platform.task_service.specs_of("job") == []
    platform.actuator.stop_tasks("job")  # idempotent


def test_redistribute_requires_all_stopped():
    platform = platform_with_job()
    with pytest.raises(SyncError, match="still"):
        platform.actuator.redistribute_checkpoints("job", 4, 8)
    platform.actuator.stop_tasks("job")
    platform.actuator.redistribute_checkpoints("job", 4, 8)  # now fine


def test_start_tasks_validates_count():
    platform = platform_with_job()
    config = platform.job_service.expected_config("job")
    with pytest.raises(SyncError, match="disagrees"):
        platform.actuator.start_tasks("job", 99, config)


def test_start_tasks_publishes_specs():
    platform = platform_with_job()
    platform.actuator.stop_tasks("job")
    config = platform.job_service.expected_config("job")
    config["task_count"] = 8
    platform.actuator.start_tasks("job", 8, config)
    assert len(platform.task_service.specs_of("job")) == 8


def test_checkpoints_survive_parallelism_change():
    """The redistribution property: no data loss or duplication across a
    task-count change, because checkpoints are per-partition."""
    platform = platform_with_job(task_count=2)
    category = platform.scribe.get_category("cat")
    category.append(40.0)
    platform.run_for(minutes=3)
    processed_before = sum(
        platform.scribe.checkpoints.get("job", p.partition_id)
        for p in category.partitions
    )
    assert processed_before == pytest.approx(40.0)

    from repro.jobs import ConfigLevel

    platform.job_service.patch("job", ConfigLevel.SCALER, {"task_count": 4})
    platform.run_for(minutes=4)
    category.append(20.0)
    platform.run_for(minutes=3)
    processed_after = sum(
        platform.scribe.checkpoints.get("job", p.partition_id)
        for p in category.partitions
    )
    assert processed_after == pytest.approx(60.0), (
        "exactly the appended bytes processed — nothing lost, nothing twice"
    )
