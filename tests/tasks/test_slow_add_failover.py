"""Tests for the ADD_SHARD-timeout container fail-over (section IV-A2)."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine


def platform_with_job():
    platform = Turbine.create(
        num_hosts=3, seed=41,
        config=PlatformConfig(num_shards=16, containers_per_host=2),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=8)
    )
    platform.run_for(minutes=3)
    return platform


def test_slow_add_triggers_container_failover():
    platform = platform_with_job()
    victim = next(
        manager for manager in platform.task_managers.values()
        if manager.assigned_shards
    )
    victim.slow_add = True
    # Force a movement toward the slow container.
    donor = next(
        manager for manager in platform.task_managers.values()
        if manager is not victim and manager.assigned_shards
    )
    shard = sorted(donor.assigned_shards)[0]
    platform.shard_manager._move_shard(
        shard, donor.container_id, victim.container_id
    )
    # The slow container was failed over: rebooted and shards reassigned.
    assert victim.reboot_count >= 1
    assert not victim.assigned_shards
    events = platform.shard_manager.failover_events
    assert any(e.container_id == victim.container_id for e in events)


def test_slow_add_failover_never_duplicates_tasks():
    platform = platform_with_job()
    victim = next(
        manager for manager in platform.task_managers.values()
        if manager.running_task_ids()
    )
    victim.slow_add = True
    donor = next(
        manager for manager in platform.task_managers.values()
        if manager is not victim and manager.assigned_shards
    )
    shard = sorted(donor.assigned_shards)[0]
    platform.shard_manager._move_shard(
        shard, donor.container_id, victim.container_id
    )
    platform.run_for(minutes=3)
    tasks = platform.running_tasks()
    assert len(tasks) == len(set(tasks))
    # Every provisioned task is running exactly once somewhere.
    assert len(platform.tasks_of_job("job")) == 8


def test_live_but_unresponsive_container_rebooted_on_failover():
    """A container whose heartbeats stop (but which keeps running tasks)
    must be rebooted by the fail-over before its shards move — otherwise
    the old tasks would keep processing alongside the new ones."""
    platform = platform_with_job()
    victim = next(
        manager for manager in platform.task_managers.values()
        if manager.running_task_ids()
    )
    # Freeze heartbeats without the proactive 40 s self-timeout (simulates
    # a wedged heartbeat thread rather than a network partition).
    victim._heartbeat_tick = lambda: None
    for timer in victim._timers:
        if "heartbeat" in timer.name:
            timer.cancel()
    platform.run_for(minutes=3)  # 60 s stale → Shard Manager fail-over
    assert victim.reboot_count >= 1, "fail-over must reboot the live victim"
    tasks = platform.running_tasks()
    assert len(tasks) == len(set(tasks))
    assert len(platform.tasks_of_job("job")) == 8
