"""Tests for TaskSpec generation and the Task Service snapshot cache."""

import pytest

from repro.errors import DegradedModeError, TurbineError
from repro.jobs import JobSpec
from repro.sim import Engine
from repro.tasks import TaskService, TaskSpec
from repro.tasks.spec import task_id_for
from repro.types import Priority


def job_config(job_id="job", task_count=4, **overrides):
    spec = JobSpec(
        job_id=job_id, input_category="cat", task_count=task_count,
        threads_per_task=2,
    )
    config = spec.to_provisioner_config()
    config.update(overrides)
    return config


class TestTaskSpec:
    def test_from_job_config(self):
        spec = TaskSpec.from_job_config("job", 1, job_config())
        assert spec.task_id == "job:1"
        assert spec.task_index == 1
        assert spec.task_count == 4
        assert spec.threads == 2
        assert spec.input_category == "cat"
        assert spec.priority == Priority.NORMAL

    def test_task_id_format(self):
        assert task_id_for("scuba/ads", 7) == "scuba/ads:7"

    def test_index_out_of_range_rejected(self):
        with pytest.raises(TurbineError):
            TaskSpec.from_job_config("job", 4, job_config(task_count=4))

    def test_fingerprint_changes_with_version(self):
        a = TaskSpec.from_job_config("job", 0, job_config())
        config = job_config()
        config["package"]["version"] = "2.0"
        b = TaskSpec.from_job_config("job", 0, config)
        assert a.settings_fingerprint() != b.settings_fingerprint()

    def test_fingerprint_stable_for_same_settings(self):
        a = TaskSpec.from_job_config("job", 0, job_config())
        b = TaskSpec.from_job_config("job", 0, job_config())
        assert a.settings_fingerprint() == b.settings_fingerprint()


class TestTaskService:
    def test_set_job_specs_generates_per_task(self):
        service = TaskService(Engine())
        specs = service.set_job_specs("job", job_config(task_count=3))
        assert [spec.task_id for spec in specs] == ["job:0", "job:1", "job:2"]

    def test_snapshot_contains_all_jobs(self):
        service = TaskService(Engine())
        service.set_job_specs("a", job_config("a", task_count=2))
        service.set_job_specs("b", job_config("b", task_count=1))
        snapshot = service.snapshot()
        assert set(snapshot) == {"a:0", "a:1", "b:0"}

    def test_snapshot_cached_within_ttl(self):
        engine = Engine()
        service = TaskService(engine, cache_ttl=90.0)
        service.set_job_specs("a", job_config("a"))
        first = service.snapshot()
        engine.run_until(30.0)
        assert service.snapshot() is first

    def test_update_hidden_until_ttl_expires(self):
        """The paper's propagation math (section IV-D) counts the full
        cache TTL: a committed change becomes visible to managers only
        when the cached snapshot expires."""
        engine = Engine()
        service = TaskService(engine, cache_ttl=90.0)
        service.set_job_specs("a", job_config("a", task_count=1))
        before = service.snapshot()
        service.set_job_specs("a", job_config("a", task_count=2))
        engine.run_until(30.0)
        assert service.snapshot() is before, "stale within the TTL"
        engine.run_until(100.0)
        after = service.snapshot()
        assert after is not before
        assert len(after) == 2

    def test_cache_expires_after_ttl(self):
        engine = Engine()
        service = TaskService(engine, cache_ttl=90.0)
        service.set_job_specs("a", job_config("a"))
        first = service.snapshot()
        engine.run_until(100.0)
        assert service.snapshot() is not first

    def test_remove_job(self):
        service = TaskService(Engine())
        service.set_job_specs("a", job_config("a"))
        service.remove_job("a")
        assert service.snapshot() == {}
        assert service.specs_of("a") == []
        service.remove_job("a")  # idempotent

    def test_degraded_mode_raises(self):
        service = TaskService(Engine())
        service.set_job_specs("a", job_config("a"))
        service.available = False
        with pytest.raises(DegradedModeError):
            service.snapshot()

    def test_version_bumps_on_change(self):
        service = TaskService(Engine())
        v0 = service.version
        service.set_job_specs("a", job_config("a"))
        assert service.version > v0

    def test_shard_index_covers_snapshot(self):
        service = TaskService(Engine())
        service.set_job_specs("a", job_config("a", task_count=10))
        index = service.shard_index(8)
        indexed_tasks = {
            task_id for bucket in index.values() for task_id in bucket
        }
        assert indexed_tasks == set(service.snapshot())

    def test_shard_index_memoized_per_snapshot_build(self):
        engine = Engine()
        service = TaskService(engine, cache_ttl=90.0)
        service.set_job_specs("a", job_config("a"))
        first = service.shard_index(8)
        assert service.shard_index(8) is first
        # A lazy write does not rebuild the index within the TTL…
        service.set_job_specs("b", job_config("b"))
        assert service.shard_index(8) is first
        # …but an urgent one does.
        service.set_job_specs("c", job_config("c"), urgent=True)
        rebuilt = service.shard_index(8)
        assert rebuilt is not first
        indexed = {tid for bucket in rebuilt.values() for tid in bucket}
        assert indexed == set(service.snapshot())

    def test_urgent_write_visible_immediately(self):
        engine = Engine()
        service = TaskService(engine, cache_ttl=90.0)
        service.set_job_specs("a", job_config("a", task_count=1))
        service.snapshot()
        service.set_job_specs("a", job_config("a", task_count=2), urgent=True)
        assert len(service.snapshot()) == 2

    def test_remove_job_visible_immediately(self):
        engine = Engine()
        service = TaskService(engine, cache_ttl=90.0)
        service.set_job_specs("a", job_config("a"))
        service.snapshot()
        service.remove_job("a")
        assert service.snapshot() == {}

    def test_job_ids_sorted(self):
        service = TaskService(Engine())
        service.set_job_specs("z", job_config("z"))
        service.set_job_specs("a", job_config("a"))
        assert service.job_ids() == ["a", "z"]
