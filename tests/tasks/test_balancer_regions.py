"""Tests for regional constraints in the balancer (paper section IV-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResourceVector
from repro.errors import PlacementError
from repro.tasks import compute_assignment


def containers_in_regions(per_region):
    """``{"east": 3, "west": 2}`` → capacities and region map."""
    capacities = {}
    regions = {}
    for region, count in per_region.items():
        for index in range(count):
            cid = f"{region}-{index}"
            capacities[cid] = ResourceVector(cpu=8.0, memory_gb=32.0)
            regions[cid] = region
    return capacities, regions


def shards(count, cpu=0.5):
    return {
        f"shard-{i:05d}": ResourceVector(cpu=cpu, memory_gb=0.5)
        for i in range(count)
    }


def test_constrained_shards_stay_in_region():
    capacities, regions = containers_in_regions({"east": 3, "west": 3})
    loads = shards(60)
    shard_regions = {
        shard_id: ("east" if i % 2 == 0 else "west")
        for i, shard_id in enumerate(sorted(loads))
    }
    change = compute_assignment(
        loads, capacities,
        container_regions=regions, shard_regions=shard_regions,
    )
    for shard_id, container_id in change.assignment.items():
        assert regions[container_id] == shard_regions[shard_id]


def test_unconstrained_shards_go_anywhere():
    capacities, regions = containers_in_regions({"east": 2, "west": 2})
    loads = shards(40)
    change = compute_assignment(
        loads, capacities, container_regions=regions, shard_regions={},
    )
    used_regions = {regions[cid] for cid in change.assignment.values()}
    assert used_regions == {"east", "west"}


def test_unsatisfiable_region_rejected():
    capacities, regions = containers_in_regions({"east": 2})
    loads = shards(4)
    shard_regions = {shard_id: "mars" for shard_id in loads}
    with pytest.raises(PlacementError, match="mars"):
        compute_assignment(
            loads, capacities,
            container_regions=regions, shard_regions=shard_regions,
        )


def test_phase1_evicts_region_violations():
    """A shard currently on the wrong region's container must move."""
    capacities, regions = containers_in_regions({"east": 2, "west": 2})
    loads = shards(8)
    shard_regions = {shard_id: "east" for shard_id in loads}
    current = {shard_id: "west-0" for shard_id in loads}
    change = compute_assignment(
        loads, capacities, current=current,
        container_regions=regions, shard_regions=shard_regions,
    )
    for container_id in change.assignment.values():
        assert regions[container_id] == "east"
    assert change.num_moves == len(loads)


def test_phase3_respects_regions():
    """Band rebalancing never drags a pinned shard out of its region."""
    capacities, regions = containers_in_regions({"east": 1, "west": 3})
    loads = shards(30, cpu=0.5)
    shard_regions = {shard_id: "east" for shard_id in sorted(loads)[:10]}
    change = compute_assignment(
        loads, capacities,
        container_regions=regions, shard_regions=shard_regions,
    )
    for shard_id, required in shard_regions.items():
        assert regions[change.assignment[shard_id]] == required


def test_mixed_constraints_balance_within_regions():
    capacities, regions = containers_in_regions({"east": 4, "west": 4})
    loads = shards(160)
    shard_regions = {
        shard_id: "east" for shard_id in sorted(loads)[:80]
    }
    change = compute_assignment(
        loads, capacities,
        container_regions=regions, shard_regions=shard_regions,
    )
    per_container = {}
    for shard_id, container_id in change.assignment.items():
        per_container[container_id] = per_container.get(container_id, 0) + 1
    counts = sorted(per_container.values())
    assert counts[-1] - counts[0] <= 8, "roughly even despite constraints"


@settings(max_examples=25, deadline=None)
@given(
    east=st.integers(min_value=1, max_value=5),
    west=st.integers(min_value=1, max_value=5),
    num_shards=st.integers(min_value=0, max_value=60),
    pinned_fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_regions_always_respected(east, west, num_shards,
                                           pinned_fraction, seed):
    import random

    rng = random.Random(seed)
    capacities, regions = containers_in_regions({"east": east, "west": west})
    loads = {
        f"shard-{i:05d}": ResourceVector(cpu=rng.uniform(0.05, 1.5))
        for i in range(num_shards)
    }
    shard_regions = {
        shard_id: rng.choice(["east", "west"])
        for shard_id in loads
        if rng.random() < pinned_fraction
    }
    change = compute_assignment(
        loads, capacities,
        container_regions=regions, shard_regions=shard_regions,
    )
    assert set(change.assignment) == set(loads)
    for shard_id, required in shard_regions.items():
        assert regions[change.assignment[shard_id]] == required
