"""Tests for stateful task state restore (paper section V-B)."""

import pytest

from repro.jobs import JobSpec
from repro.scribe import ScribeBus
from repro.tasks import RunningTask, TaskSpec


def make_task(stateful=True, keys=40_000_000, task_count=1, rate=10.0):
    scribe = ScribeBus()
    scribe.ensure_category("cat", 4)
    config = JobSpec(
        job_id="job", input_category="cat", task_count=task_count,
        rate_per_thread_mb=rate, stateful=stateful,
        state_key_cardinality=keys if stateful else 0,
    ).to_provisioner_config()
    spec = TaskSpec.from_job_config("job", 0, config)
    return RunningTask(spec, scribe), scribe


def test_stateless_task_has_no_restore():
    task, __ = make_task(stateful=False)
    assert not task.restoring
    assert task.restore_remaining_mb == 0.0


def test_stateful_task_restores_before_processing():
    # 40M keys → 10 GB state → 50 s at 200 MB/s.
    task, scribe = make_task()
    assert task.restoring
    scribe.get_category("cat").append(100.0)
    processed = task.step(10.0)
    assert processed == 0.0, "still restoring after 10 s"
    assert task.last_cpu_used == 1.0, "restore burns a core"
    task.step(30.0)
    assert task.restoring  # 40/50 s done
    task.step(20.0)  # restore finishes at 50 s; 10 s of processing
    assert not task.restoring
    assert task.total_processed_mb == pytest.approx(100.0)


def test_restore_time_proportional_to_state():
    small, __ = make_task(keys=8_000_000)    # 2 GB
    large, __ = make_task(keys=40_000_000)   # 10 GB
    assert large.restore_remaining_mb == pytest.approx(
        5 * small.restore_remaining_mb
    )


def test_parallelism_shrinks_per_task_restore():
    narrow, __ = make_task(task_count=1)
    wide, __ = make_task(task_count=4)
    assert wide.restore_remaining_mb == pytest.approx(
        narrow.restore_remaining_mb / 4
    )


def test_partial_step_splits_restore_and_processing():
    task, scribe = make_task(keys=800_000)  # 0.2 GB → 1 s restore
    scribe.get_category("cat").append(1000.0)
    processed = task.step(10.0)  # 1 s restore + 9 s processing at 10 MB/s
    assert processed == pytest.approx(90.0)
    assert not task.restoring


def test_restart_restores_again():
    task, scribe = make_task(keys=800_000)
    scribe.get_category("cat").append(1000.0)
    task.step(10.0)
    assert not task.restoring
    task.restart()
    assert task.restoring, "every restart pays the restore cost again"


def test_stateless_restart_is_free():
    task, scribe = make_task(stateful=False)
    scribe.get_category("cat").append(100.0)
    task.step(10.0)
    task.restart()
    assert not task.restoring
