"""Tests for the simulated task runtime (the data plane)."""

import pytest

from repro.jobs import JobSpec
from repro.scribe import ScribeBus
from repro.tasks import RunningTask, TaskSpec
from repro.types import TaskState


def make_task(
    task_index=0, task_count=1, rate=2.0, threads=1, partitions=4,
    memory_gb=2.0, stateful=False, keys=0, scribe=None,
):
    scribe = scribe or ScribeBus()
    scribe.ensure_category("cat", partitions)
    spec = JobSpec(
        job_id="job", input_category="cat", task_count=task_count,
        threads_per_task=threads, rate_per_thread_mb=rate,
        stateful=stateful, state_key_cardinality=keys,
    ).to_provisioner_config()
    spec["resources"] = {"cpu": 1.0, "memory_gb": memory_gb}
    task_spec = TaskSpec.from_job_config("job", task_index, spec)
    return RunningTask(task_spec, scribe), scribe


class TestProcessing:
    def test_processes_available_bytes(self):
        task, scribe = make_task()
        scribe.get_category("cat").append(10.0)
        processed = task.step(10.0)  # budget 2 MB/s * 10 s = 20 MB
        assert processed == pytest.approx(10.0)
        assert task.bytes_lagged_mb() == pytest.approx(0.0)

    def test_rate_capped_at_p_times_k(self):
        task, scribe = make_task(rate=2.0, threads=2)
        scribe.get_category("cat").append(1000.0)
        processed = task.step(10.0)
        assert processed == pytest.approx(2.0 * 2 * 10.0)
        assert task.last_rate_mb == pytest.approx(4.0)

    def test_checkpoints_advance(self):
        task, scribe = make_task(partitions=2)
        scribe.get_category("cat").append(10.0)
        task.step(10.0)
        for partition in scribe.get_category("cat").partitions:
            assert scribe.checkpoints.get("job", partition.partition_id) == (
                pytest.approx(5.0)
            )

    def test_restart_resumes_from_checkpoint(self):
        task, scribe = make_task()
        scribe.get_category("cat").append(10.0)
        task.step(10.0)
        task.stop()
        # New incarnation, same scribe: picks up where the old one stopped.
        fresh = RunningTask(task.spec, scribe)
        scribe.get_category("cat").append(6.0)
        processed = fresh.step(10.0)
        assert processed == pytest.approx(6.0)

    def test_only_owned_partitions_processed(self):
        scribe = ScribeBus()
        task0, __ = make_task(task_index=0, task_count=2, scribe=scribe)
        task1, __ = make_task(task_index=1, task_count=2, scribe=scribe)
        scribe.get_category("cat").append(8.0)  # 2.0 MB in each of 4 partitions
        task0.step(10.0)
        assert task0.bytes_lagged_mb() == pytest.approx(0.0)
        assert task1.bytes_lagged_mb() == pytest.approx(4.0)

    def test_stopped_task_processes_nothing(self):
        task, scribe = make_task()
        scribe.get_category("cat").append(10.0)
        task.stop()
        assert task.step(10.0) == 0.0
        assert task.state == TaskState.STOPPED

    def test_leftover_budget_flows_to_later_partitions(self):
        task, scribe = make_task(partitions=2, rate=10.0)
        category = scribe.get_category("cat")
        category.set_weights([0.1, 0.9])
        category.append(50.0)  # 5 MB and 45 MB
        processed = task.step(10.0)  # budget 100 MB
        assert processed == pytest.approx(50.0)

    def test_cpu_usage_proportional_to_rate(self):
        task, scribe = make_task(rate=2.0, threads=2)
        scribe.get_category("cat").append(20.0)
        task.step(10.0)  # processes 20 MB in 10 s = 2 MB/s = 1 busy thread
        assert task.last_cpu_used == pytest.approx(1.0)

    def test_backlog_reported(self):
        task, scribe = make_task(rate=0.5)
        scribe.get_category("cat").append(100.0)
        task.step(10.0)  # can only do 5 MB
        assert task.bytes_lagged_mb() == pytest.approx(95.0)


class TestMemoryAndOom:
    def test_base_memory_floor(self):
        task, __ = make_task()
        assert task.memory_needed_gb() == pytest.approx(0.4)

    def test_memory_grows_with_rate(self):
        task, scribe = make_task(rate=100.0)
        scribe.get_category("cat").append(10000.0)
        task.step(10.0)
        assert task.memory_needed_gb() > 0.4

    def test_stateful_memory_includes_state(self):
        task, __ = make_task(stateful=True, keys=4_000_000)
        assert task.memory_needed_gb() == pytest.approx(0.4 + 1.0)

    def test_state_memory_shrinks_with_parallelism(self):
        narrow, __ = make_task(stateful=True, keys=4_000_000, task_count=1)
        wide, __ = make_task(
            stateful=True, keys=4_000_000, task_count=4, task_index=0
        )
        assert wide.memory_needed_gb() < narrow.memory_needed_gb()

    def test_oom_crash_when_over_reservation(self):
        task, scribe = make_task(rate=1000.0, memory_gb=0.5)
        scribe.get_category("cat").append(100000.0)
        task.step(10.0)  # buffers 1000 MB/s * 5 s = 5 GB >> 0.5 GB reserved
        assert task.state == TaskState.CRASHED
        assert task.oom_count == 1

    def test_no_oom_without_enforcement(self):
        """Zero reserved memory means no cgroup limit — soft monitoring only."""
        task, scribe = make_task(rate=1000.0, memory_gb=0.0)
        scribe.get_category("cat").append(100000.0)
        task.step(10.0)
        assert task.state == TaskState.RUNNING

    def test_restart_after_oom(self):
        task, scribe = make_task(rate=1000.0, memory_gb=0.5)
        scribe.get_category("cat").append(100000.0)
        task.step(10.0)
        task.restart()
        assert task.state == TaskState.RUNNING
