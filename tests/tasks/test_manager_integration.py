"""Integration tests for Task Managers + Shard Manager + platform wiring.

These exercise the paper's section IV end to end: two-level scheduling,
shard movement, heartbeat failover (40 s connection timeout vs 60 s
fail-over), degraded modes, and the no-duplicate / no-loss invariants.
"""

import pytest

from repro import JobSpec, PlatformConfig, Turbine


def small_platform(num_hosts=3, num_shards=16, seed=7, **config_overrides):
    config = PlatformConfig(num_shards=num_shards, containers_per_host=2)
    for key, value in config_overrides.items():
        setattr(config, key, value)
    platform = Turbine.create(num_hosts=num_hosts, seed=seed, config=config)
    platform.start()
    return platform


def provision_and_settle(platform, spec, settle=300.0):
    platform.provision(spec)
    platform.run_for(seconds=settle)


class TestScheduling:
    def test_tasks_start_within_two_minutes(self):
        """End-to-end scheduling is 1–2 minutes on average (section IV-D)."""
        platform = small_platform()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.run_for(seconds=150.0)
        assert len(platform.tasks_of_job("job")) == 4

    def test_no_duplicate_tasks(self):
        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=8)
        )
        tasks = platform.running_tasks()
        assert len(tasks) == len(set(tasks)) == 8

    def test_tasks_spread_across_containers(self):
        platform = small_platform(num_hosts=4, num_shards=64)
        provision_and_settle(
            platform,
            JobSpec(job_id="job", input_category="cat", task_count=32),
        )
        owners = {
            manager.container_id
            for manager in platform.task_managers.values()
            if manager.running_task_ids()
        }
        assert len(owners) >= 4, "32 tasks should land on several containers"

    def test_data_is_processed(self):
        platform = small_platform()
        provision_and_settle(
            platform,
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=10.0),
        )
        platform.scribe.get_category("cat").append(50.0)
        platform.run_for(minutes=5)
        assert platform.job_lag_mb("job") == pytest.approx(0.0, abs=1e-6)

    def test_parallelism_change_restarts_with_new_count(self):
        from repro.jobs import ConfigLevel

        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.job_service.patch("job", ConfigLevel.SCALER, {"task_count": 8})
        platform.run_for(minutes=4)
        assert len(platform.tasks_of_job("job")) == 8

    def test_package_release_restarts_tasks_in_place(self):
        from repro.jobs import ConfigLevel

        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.job_service.patch(
            "job", ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "2.0"}},
        )
        platform.run_for(minutes=4)
        versions = {
            task.spec.package_version
            for manager in platform.task_managers.values()
            for task in manager.tasks.values()
            if task.spec.job_id == "job"
        }
        assert versions == {"2.0"}

    def test_job_stop_removes_tasks(self):
        from repro.types import JobState

        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.job_store.set_state("job", JobState.STOPPED)
        platform.actuator.stop_tasks("job")
        platform.run_for(minutes=3)
        assert platform.tasks_of_job("job") == []


class TestFailover:
    def test_host_failure_moves_tasks(self):
        platform = small_platform(num_hosts=3)
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=8)
        )
        assert len(platform.tasks_of_job("job")) == 8
        platform.cluster.fail_host("host-0")
        # Heartbeats go stale after 60 s; fail-over plus restart within ~2 min.
        platform.run_for(minutes=4)
        assert len(platform.tasks_of_job("job")) == 8
        for manager in platform.task_managers.values():
            assert manager.container.host_id != "host-0"

    def test_failover_event_recorded(self):
        platform = small_platform(num_hosts=3)
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.cluster.fail_host("host-1")
        platform.run_for(minutes=3)
        assert platform.shard_manager.failover_events, "failover must fire"

    def test_partitioned_manager_reboots_before_failover(self):
        """The 40 s connection timeout fires before the 60 s fail-over,
        so no duplicate tasks can exist (section IV-C)."""
        platform = small_platform(num_hosts=3)
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=8)
        )
        victim = next(
            manager for manager in platform.task_managers.values()
            if manager.running_task_ids()
        )
        victim.partitioned = True
        platform.run_for(minutes=5)
        assert victim.reboot_count >= 1
        tasks = platform.running_tasks()
        assert len(tasks) == len(set(tasks)), "no duplicates at any point"
        assert len(platform.tasks_of_job("job")) == 8

    def test_short_partition_keeps_shards(self):
        """A connection blip shorter than the timeout changes nothing."""
        platform = small_platform(num_hosts=3)
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=8)
        )
        victim = next(
            manager for manager in platform.task_managers.values()
            if manager.assigned_shards
        )
        shards_before = set(victim.assigned_shards)
        victim.partitioned = True
        platform.run_for(seconds=30.0)  # under the 40 s timeout
        victim.partitioned = False
        platform.run_for(minutes=2)
        assert victim.reboot_count == 0
        assert victim.assigned_shards == shards_before

    def test_recovered_host_rejoins_and_gets_load(self):
        platform = small_platform(num_hosts=3, num_shards=32)
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=16)
        )
        platform.cluster.fail_host("host-0")
        platform.run_for(minutes=3)
        platform.recover_host("host-0")
        # The next rebalance (30 min default) spreads shards back.
        platform.run_for(minutes=35)
        recovered_managers = [
            manager for manager in platform.task_managers.values()
            if manager.container.host_id == "host-0"
        ]
        assert recovered_managers
        assert any(m.assigned_shards for m in recovered_managers)


class TestDegradedModes:
    def test_task_service_down_tasks_keep_running(self):
        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.task_service.available = False
        platform.run_for(minutes=10)
        assert len(platform.tasks_of_job("job")) == 4

    def test_shard_manager_down_tasks_keep_running(self):
        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.shard_manager.available = False
        # A Shard Manager *outage* is announced (ServiceUnavailableError),
        # so managers keep their shards and tasks — no reboot clock runs
        # (paper IV-C: "containers continue running tasks").
        platform.run_for(minutes=2)
        platform.shard_manager.available = True
        platform.run_for(minutes=3)
        assert len(platform.tasks_of_job("job")) == 4

    def test_shard_manager_outage_nonfatal_heartbeats(self):
        """Regression: heartbeat failures against a *down* Shard Manager
        must be non-fatal. Managers keep shards through an outage far
        longer than the 40 s connection timeout, never reboot, and the
        recovery grace period prevents spurious mass fail-over."""
        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        shards_before = {
            cid: set(m.assigned_shards)
            for cid, m in platform.task_managers.items()
        }
        platform.shard_manager.fail()
        platform.run_for(minutes=10)  # 15x the connection timeout
        assert len(platform.tasks_of_job("job")) == 4, (
            "tasks must keep running through a Shard Manager outage"
        )
        assert all(
            m.reboot_count == 0 for m in platform.task_managers.values()
        ), "an announced outage must not start the reboot clock"
        assert {
            cid: set(m.assigned_shards)
            for cid, m in platform.task_managers.items()
        } == shards_before
        platform.shard_manager.recover()
        platform.run_for(minutes=3)
        assert not platform.shard_manager.failover_events, (
            "recovery grace must prevent spurious fail-over of live "
            "containers whose heartbeats were blocked by the outage"
        )
        assert len(platform.tasks_of_job("job")) == 4

    def test_unregistered_heartbeat_still_runs_reboot_clock(self):
        """The other half of the split: a *connection*-level failure
        (manager unknown to a live Shard Manager) still reboots after
        the 40 s timeout — the IV-C protocol is unchanged."""
        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=8)
        )
        victim = next(
            manager for manager in platform.task_managers.values()
            if manager.running_task_ids()
        )
        victim.partitioned = True
        platform.run_for(minutes=5)
        assert victim.reboot_count >= 1

    def test_job_admission_halt_leaves_running_jobs(self):
        from repro.errors import DegradedModeError

        platform = small_platform()
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        platform.job_service.admitting = False
        with pytest.raises(DegradedModeError):
            platform.provision(JobSpec(job_id="new", input_category="x"))
        platform.run_for(minutes=2)
        assert len(platform.tasks_of_job("job")) == 4


class TestShardMovement:
    def test_drop_timeout_triggers_force_kill(self):
        platform = small_platform(num_hosts=2, num_shards=8)
        provision_and_settle(
            platform, JobSpec(job_id="job", input_category="cat", task_count=8)
        )
        victim = next(
            manager for manager in platform.task_managers.values()
            if manager.assigned_shards
        )
        victim.slow_drop = True
        shard = sorted(victim.assigned_shards)[0]
        destination = next(
            manager for manager in platform.task_managers.values()
            if manager is not victim
        )
        platform.shard_manager._move_shard(
            shard, victim.container_id, destination.container_id
        )
        assert shard not in victim.assigned_shards, "force-killed"
        assert shard in destination.assigned_shards

    def test_load_reports_reach_shard_manager(self):
        platform = small_platform()
        provision_and_settle(
            platform,
            JobSpec(job_id="job", input_category="cat", task_count=4,
                    rate_per_thread_mb=5.0),
        )
        # Generate sustained traffic so loads are non-trivial.
        for __ in range(12):
            platform.scribe.get_category("cat").append(60.0)
            platform.run_for(minutes=1)
        platform.run_for(minutes=11)  # past a 10-minute report interval
        assert platform.shard_manager.shard_loads, "loads must be reported"


class TestStatsCollection:
    def test_job_metrics_recorded(self):
        platform = small_platform()
        provision_and_settle(
            platform,
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=5.0),
        )
        for __ in range(5):
            platform.scribe.get_category("cat").append(30.0)
            platform.run_for(minutes=1)
        metrics = platform.metrics
        assert metrics.latest("job", "input_rate_mb") > 0
        assert metrics.latest("job", "processing_rate_mb") > 0
        assert metrics.latest("job", "running_tasks") == 2.0
        assert metrics.latest("job", "time_lagged") is not None

    def test_lag_metric_reflects_backlog(self):
        platform = small_platform()
        provision_and_settle(
            platform,
            JobSpec(job_id="job", input_category="cat", task_count=1,
                    rate_per_thread_mb=1.0),
        )
        platform.scribe.get_category("cat").append(3600.0)  # 1 h of work
        platform.run_for(minutes=3)
        assert platform.metrics.latest("job", "time_lagged") > 90.0
