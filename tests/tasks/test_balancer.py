"""Unit and property tests for the bin-packing shard balancer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResourceVector
from repro.errors import PlacementError
from repro.tasks import compute_assignment
from repro.tasks.balancer import load_spread


def uniform_containers(count, cpu=8.0, mem=32.0):
    return {
        f"c{i}": ResourceVector(cpu=cpu, memory_gb=mem) for i in range(count)
    }


def uniform_shards(count, cpu=0.5, mem=1.0):
    return {
        f"shard-{i:05d}": ResourceVector(cpu=cpu, memory_gb=mem)
        for i in range(count)
    }


def container_loads(change, shard_loads, containers):
    reference = ResourceVector.zero()
    for capacity in containers.values():
        reference = reference + capacity
    reference = reference.scaled(1.0 / len(containers))
    loads = {cid: 0.0 for cid in containers}
    for shard_id, cid in change.assignment.items():
        loads[cid] += shard_loads[shard_id].utilization_of(reference)
    return loads


class TestBasics:
    def test_every_shard_assigned(self):
        shards = uniform_shards(100)
        containers = uniform_containers(10)
        change = compute_assignment(shards, containers)
        assert set(change.assignment) == set(shards)
        assert set(change.assignment.values()) <= set(containers)

    def test_no_containers_rejected(self):
        with pytest.raises(PlacementError):
            compute_assignment(uniform_shards(4), {})

    def test_invalid_band_rejected(self):
        with pytest.raises(PlacementError):
            compute_assignment(uniform_shards(1), uniform_containers(1), band=0)

    def test_invalid_headroom_rejected(self):
        with pytest.raises(PlacementError):
            compute_assignment(
                uniform_shards(1), uniform_containers(1), headroom=1.0
            )

    def test_empty_shards_ok(self):
        change = compute_assignment({}, uniform_containers(3))
        assert change.assignment == {}
        assert change.num_moves == 0

    def test_deterministic(self):
        shards = uniform_shards(200)
        containers = uniform_containers(7)
        a = compute_assignment(shards, containers)
        b = compute_assignment(shards, containers)
        assert a.assignment == b.assignment


class TestBalance:
    def test_uniform_shards_balance_within_band(self):
        shards = uniform_shards(1000)
        containers = uniform_containers(10)
        change = compute_assignment(shards, containers, band=0.10)
        loads = container_loads(change, shards, containers)
        assert load_spread(loads) <= 0.10 + 1e-9

    def test_heterogeneous_shards_balance(self):
        shards = {}
        for i in range(300):
            cpu = 0.1 + (i % 10) * 0.2  # loads from 0.1 to 1.9 cores
            shards[f"shard-{i:05d}"] = ResourceVector(cpu=cpu, memory_gb=0.5)
        containers = uniform_containers(12)
        change = compute_assignment(shards, containers, band=0.10)
        loads = container_loads(change, shards, containers)
        assert load_spread(loads) <= 0.15, "small spread even with skew"

    def test_single_giant_shard_tolerated(self):
        """One shard can exceed any band; the balancer must not loop."""
        shards = uniform_shards(10, cpu=0.1)
        shards["shard-big"] = ResourceVector(cpu=50.0)
        change = compute_assignment(shards, uniform_containers(4))
        assert "shard-big" in change.assignment


class TestStability:
    def test_balanced_assignment_unchanged(self):
        """Re-running on an already balanced assignment moves nothing —
        rebalancing every 30 minutes must not churn a quiet cluster."""
        shards = uniform_shards(100)
        containers = uniform_containers(10)
        first = compute_assignment(shards, containers)
        second = compute_assignment(shards, containers, current=first.assignment)
        assert second.num_moves == 0
        assert second.assignment == first.assignment

    def test_new_container_draws_shards(self):
        shards = uniform_shards(100)
        containers = uniform_containers(4)
        first = compute_assignment(shards, containers)
        containers_grown = uniform_containers(5)
        second = compute_assignment(
            shards, containers_grown, current=first.assignment
        )
        drawn = [cid for cid in second.assignment.values() if cid == "c4"]
        assert len(drawn) >= 10, "the empty container should absorb load"

    def test_dead_container_shards_reassigned(self):
        shards = uniform_shards(100)
        containers = uniform_containers(5)
        first = compute_assignment(shards, containers)
        survivors = {cid: cap for cid, cap in containers.items() if cid != "c0"}
        second = compute_assignment(shards, survivors, current=first.assignment)
        assert set(second.assignment.values()) <= set(survivors)
        # Shards that stayed on live containers did not move.
        for shard_id, cid in first.assignment.items():
            if cid != "c0":
                assert second.assignment[shard_id] == cid

    def test_hot_shard_drains_from_overloaded_container(self):
        shards = uniform_shards(20, cpu=0.2)
        containers = uniform_containers(2)
        # Start with everything crammed onto c0.
        current = {shard_id: "c0" for shard_id in shards}
        change = compute_assignment(shards, containers, current=current)
        loads = container_loads(change, shards, containers)
        assert load_spread(loads) <= 0.10 + 1e-9
        assert change.num_moves > 0


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        num_shards=st.integers(min_value=0, max_value=120),
        num_containers=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_total_assignment_invariant(self, num_shards, num_containers, seed):
        import random

        rng = random.Random(seed)
        shards = {
            f"shard-{i:05d}": ResourceVector(
                cpu=rng.uniform(0.01, 2.0), memory_gb=rng.uniform(0.1, 4.0)
            )
            for i in range(num_shards)
        }
        containers = uniform_containers(num_containers)
        change = compute_assignment(shards, containers)
        # Every shard assigned exactly once, to a real container.
        assert set(change.assignment) == set(shards)
        assert set(change.assignment.values()) <= set(containers)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_moves_consistent_with_assignment(self, seed):
        import random

        rng = random.Random(seed)
        shards = {
            f"shard-{i:05d}": ResourceVector(cpu=rng.uniform(0.05, 1.0))
            for i in range(60)
        }
        containers = uniform_containers(5)
        current = {
            shard_id: f"c{rng.randrange(5)}" for shard_id in list(shards)[:40]
        }
        change = compute_assignment(shards, containers, current=current)
        # Following the move list from `current` reproduces the assignment.
        replay = dict(current)
        for shard_id, __, destination in change.moves:
            replay[shard_id] = destination
        assert replay == change.assignment
