"""Tests for the single-reader-per-partition throughput ceiling."""

import pytest

from repro.jobs import JobSpec
from repro.scribe import ScribeBus
from repro.tasks import RunningTask, TaskSpec


def make_task(threads=2, partitions=1, rate=2.0):
    scribe = ScribeBus()
    scribe.ensure_category("cat", partitions)
    config = JobSpec(
        job_id="job", input_category="cat", threads_per_task=threads,
        rate_per_thread_mb=rate,
    ).to_provisioner_config()
    return RunningTask(TaskSpec.from_job_config("job", 0, config)), scribe


def make_task_full(threads=2, partitions=1, rate=2.0):
    scribe = ScribeBus()
    scribe.ensure_category("cat", partitions)
    config = JobSpec(
        job_id="job", input_category="cat", threads_per_task=threads,
        rate_per_thread_mb=rate,
    ).to_provisioner_config()
    spec = TaskSpec.from_job_config("job", 0, config)
    return RunningTask(spec, scribe), scribe


def test_single_partition_caps_at_one_thread():
    """A partition is a serial stream: two threads cannot both read it."""
    task, scribe = make_task_full(threads=2, partitions=1, rate=2.0)
    scribe.get_category("cat").append(1000.0)
    processed = task.step(10.0)
    assert processed == pytest.approx(2.0 * 10.0), "one thread's worth only"


def test_two_partitions_unlock_both_threads():
    task, scribe = make_task_full(threads=2, partitions=2, rate=2.0)
    scribe.get_category("cat").append(1000.0)
    processed = task.step(10.0)
    assert processed == pytest.approx(2.0 * 2 * 10.0)


def test_hot_partition_capped_but_cold_ones_served():
    """One hot partition plus cold ones: the hot one drains at P, the
    leftover budget serves the cold ones — no starvation either way."""
    task, scribe = make_task_full(threads=2, partitions=4, rate=2.0)
    category = scribe.get_category("cat")
    category.set_weights([0.91, 0.03, 0.03, 0.03])
    category.append(1000.0)  # hot: 910 MB, cold: 30 MB each
    processed = task.step(10.0)  # budget 40, per-partition cap 20
    # Cold partitions fully drained (90 MB > budget? no: 3x30=90... budget
    # 40 total; water-fill: cold avails 30,30,30 then hot 910.
    # shares: 10,10,10 then leftover 10 to hot (cap 20) → 40 total.
    assert processed == pytest.approx(40.0)
    hot_offset = scribe.checkpoints.get("job", "cat/0")
    assert hot_offset <= 2.0 * 10.0 + 1e-6, "hot partition at most one thread"
