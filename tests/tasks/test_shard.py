"""Unit tests for the MD5 task-to-shard mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.tasks import shard_id_for_task
from repro.tasks.shard import all_shard_ids, group_tasks_by_shard


def test_mapping_is_deterministic():
    assert shard_id_for_task("job:0", 64) == shard_id_for_task("job:0", 64)


def test_mapping_within_range():
    for index in range(100):
        shard = shard_id_for_task(f"job:{index}", 16)
        assert shard in set(all_shard_ids(16))


def test_different_tasks_spread_across_shards():
    shards = {shard_id_for_task(f"job:{i}", 64) for i in range(1000)}
    assert len(shards) > 48, "1000 tasks should hit most of 64 shards"


def test_zero_shards_rejected():
    with pytest.raises(PlacementError):
        shard_id_for_task("job:0", 0)
    with pytest.raises(PlacementError):
        all_shard_ids(-1)


def test_group_tasks_by_shard_covers_all_tasks():
    task_ids = [f"job-{j}:{i}" for j in range(10) for i in range(10)]
    grouped = group_tasks_by_shard(task_ids, 16)
    regrouped = [tid for bucket in grouped.values() for tid in bucket]
    assert sorted(regrouped) == sorted(task_ids)


def test_group_buckets_sorted():
    grouped = group_tasks_by_shard(["b:1", "a:1", "c:1"], 1)
    assert grouped["shard-00000"] == ["a:1", "b:1", "c:1"]


def test_all_shard_ids_format():
    assert all_shard_ids(3) == ["shard-00000", "shard-00001", "shard-00002"]


@given(st.text(min_size=1, max_size=30), st.integers(min_value=1, max_value=4096))
def test_any_task_id_maps_into_range(task_id, num_shards):
    shard = shard_id_for_task(task_id, num_shards)
    index = int(shard.split("-")[1])
    assert 0 <= index < num_shards


@given(st.integers(min_value=1, max_value=256))
def test_distribution_roughly_uniform(num_shards):
    """No shard should get a wildly disproportionate share of tasks."""
    task_ids = [f"job-{i}:{i % 7}" for i in range(num_shards * 20)]
    grouped = group_tasks_by_shard(task_ids, num_shards)
    biggest = max(len(bucket) for bucket in grouped.values())
    assert biggest <= 20 * 4, "MD5 should spread tasks roughly uniformly"
