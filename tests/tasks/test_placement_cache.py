"""Property test: cached placement ≡ from-scratch placement.

:class:`~repro.tasks.balancer.PlacementCache` claims *exact* equivalence:
whatever tier serves a round (hit, repair, or miss), the returned
assignment and move list are identical — including float-sensitive
tie-breaks — to a fresh :func:`~repro.tasks.balancer.compute_assignment`
on the same inputs. These tests drive a cache through random sequences of
deltas (load changes, shard churn, container loss) and compare every
round against an uncached twin computation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.tasks.balancer import PlacementCache, compute_assignment

loads = st.integers(1, 40).map(
    lambda n: ResourceVector(cpu=n / 10.0, memory_gb=n / 5.0)
)
capacities = st.integers(50, 100).map(
    lambda n: ResourceVector(cpu=float(n), memory_gb=2.0 * n)
)


@st.composite
def tiers(draw):
    """An initial tier: containers with capacities, shards with loads."""
    num_containers = draw(st.integers(1, 4))
    container_capacities = {
        f"container-{index}": draw(capacities)
        for index in range(num_containers)
    }
    num_shards = draw(st.integers(0, 12))
    shard_loads = {
        f"shard-{index:02d}": draw(loads) for index in range(num_shards)
    }
    return shard_loads, container_capacities


@st.composite
def deltas(draw):
    """A bounded round-to-round change, as a list of edit operations."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("load"), st.integers(0, 15), loads),
                st.tuples(st.just("add_shard"), st.integers(0, 15), loads),
                st.tuples(st.just("del_shard"), st.integers(0, 15)),
                st.tuples(st.just("del_container"), st.integers(0, 3)),
            ),
            min_size=0,
            max_size=4,
        )
    )


def apply_delta(delta, shard_loads, container_capacities):
    for op in delta:
        if op[0] == "load":
            __, index, load = op
            shard_id = f"shard-{index:02d}"
            if shard_id in shard_loads:
                shard_loads[shard_id] = load
        elif op[0] == "add_shard":
            __, index, load = op
            shard_loads[f"shard-{index:02d}"] = load
        elif op[0] == "del_shard":
            __, index = op
            shard_loads.pop(f"shard-{index:02d}", None)
        elif op[0] == "del_container":
            __, index = op
            if len(container_capacities) > 1:
                container_capacities.pop(f"container-{index}", None)


def assert_valid(change, shard_loads, container_capacities):
    assert set(change.assignment) == set(shard_loads)
    for owner in change.assignment.values():
        assert owner in container_capacities


@settings(max_examples=80, deadline=None)
@given(tier=tiers(), rounds=st.lists(deltas(), min_size=1, max_size=5))
def test_cache_matches_fresh_compute_under_random_deltas(tier, rounds):
    shard_loads, container_capacities = tier
    cache = PlacementCache()
    current = {}

    for delta in rounds:
        apply_delta(delta, shard_loads, container_capacities)
        # Mirror ShardManager: shards on dead containers are unassigned.
        current = {
            shard_id: owner
            for shard_id, owner in current.items()
            if owner in container_capacities and shard_id in shard_loads
        }
        cached = cache.compute(
            dict(shard_loads), dict(container_capacities), dict(current)
        )
        fresh = compute_assignment(
            dict(shard_loads), dict(container_capacities), dict(current)
        )
        assert cached.assignment == fresh.assignment
        assert cached.moves == fresh.moves or cached.moves == [], (
            "a cache hit may elide already-applied moves, but any other "
            "tier must reproduce the exact move list"
        )
        if cached.moves == [] and fresh.moves != []:
            # Only a pure hit may differ in moves, and only when the
            # current assignment already equals the target.
            assert dict(current) == fresh.assignment
        assert_valid(cached, shard_loads, container_capacities)
        current = cached.assignment

    assert cache.hits + cache.repairs + cache.misses == len(rounds)


@settings(max_examples=60, deadline=None)
@given(tier=tiers())
def test_empty_delta_is_a_pure_hit(tier):
    shard_loads, container_capacities = tier
    cache = PlacementCache()
    first = cache.compute(shard_loads, container_capacities, {})
    hits_before = cache.hits
    second = cache.compute(
        shard_loads, container_capacities, dict(first.assignment)
    )
    fresh = compute_assignment(
        shard_loads, container_capacities, dict(first.assignment)
    )
    assert second.assignment == fresh.assignment
    assert second.assignment == first.assignment
    if cache.hits > hits_before:
        assert second.moves == []
    else:
        # The first result was band-unstable; the cache correctly refused
        # to serve it and recomputed instead.
        assert second.moves == fresh.moves


@settings(max_examples=40, deadline=None)
@given(tier=tiers(), rounds=st.lists(deltas(), min_size=1, max_size=4))
def test_cache_with_regions_matches_fresh_compute(tier, rounds):
    """Regional constraints ride along: every shard pinned to a region
    must land on a matching container, cached or not."""
    shard_loads, container_capacities = tier
    container_regions = {
        container_id: ("west" if index % 2 else "east")
        for index, container_id in enumerate(sorted(container_capacities))
    }
    # Pin every third shard to a region that exists in the tier.
    present = sorted(set(container_regions.values()))
    shard_regions = {
        shard_id: present[index % len(present)]
        for index, shard_id in enumerate(sorted(shard_loads))
        if index % 3 == 0
    }
    cache = PlacementCache()
    current = {}
    for delta in rounds:
        # Keep the container set stable here — container loss with regions
        # can make a pinned shard unplaceable, which raises in both paths.
        filtered = [op for op in delta if op[0] != "del_container"]
        apply_delta(filtered, shard_loads, container_capacities)
        shard_regions = {
            shard_id: region
            for shard_id, region in shard_regions.items()
            if shard_id in shard_loads
        }
        current = {
            shard_id: owner
            for shard_id, owner in current.items()
            if shard_id in shard_loads
        }
        cached = cache.compute(
            dict(shard_loads), dict(container_capacities), dict(current),
            container_regions=dict(container_regions),
            shard_regions=dict(shard_regions),
        )
        fresh = compute_assignment(
            dict(shard_loads), dict(container_capacities), dict(current),
            container_regions=dict(container_regions),
            shard_regions=dict(shard_regions),
        )
        assert cached.assignment == fresh.assignment
        for shard_id, region in shard_regions.items():
            assert container_regions[cached.assignment[shard_id]] == region
        current = cached.assignment


def test_invalidate_forces_full_recompute():
    shard_loads = {"shard-00": ResourceVector(cpu=1.0)}
    container_capacities = {"container-0": ResourceVector(cpu=10.0)}
    cache = PlacementCache()
    first = cache.compute(shard_loads, container_capacities, {})
    cache.invalidate()
    cache.compute(
        shard_loads, container_capacities, dict(first.assignment)
    )
    assert cache.misses == 2
    assert cache.hits == 0


def test_counters_classify_tiers():
    shard_loads = {
        f"shard-{index:02d}": ResourceVector(cpu=1.0) for index in range(6)
    }
    container_capacities = {
        f"container-{index}": ResourceVector(cpu=20.0) for index in range(2)
    }
    cache = PlacementCache()
    first = cache.compute(shard_loads, container_capacities, {})
    assert cache.misses == 1
    # Unchanged round after a round that *moved* shards: repair, not a
    # hit — only a zero-move round is a provable fixed point the cache
    # may serve back verbatim.
    second = cache.compute(
        shard_loads, container_capacities, dict(first.assignment)
    )
    assert cache.repairs == 1
    assert second.moves == []
    # Unchanged round after a settled round: pure hit.
    cache.compute(
        shard_loads, container_capacities, dict(second.assignment)
    )
    assert cache.hits == 1
    # One load report changed: repair.
    shard_loads["shard-03"] = ResourceVector(cpu=1.5)
    cache.compute(
        shard_loads, container_capacities, dict(second.assignment)
    )
    assert cache.repairs == 2
