"""Unit tests for the JobStatsCollector (equation 1 and friends)."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.tasks.stats import INFINITE_LAG


def collector_platform(step_interval=10.0, stats_interval=60.0):
    platform = Turbine.create(
        num_hosts=2, seed=47,
        config=PlatformConfig(num_shards=8, containers_per_host=2,
                              step_interval=step_interval,
                              stats_interval=stats_interval),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2,
                rate_per_thread_mb=4.0),
        partitions=8,
    )
    platform.run_for(minutes=3)
    return platform


def test_input_rate_from_head_deltas():
    platform = collector_platform()
    for __ in range(5):
        platform.scribe.get_category("cat").append(3.0 * 60.0)
        platform.run_for(minutes=1)
    assert platform.metrics.latest("job", "input_rate_mb") == pytest.approx(
        3.0, rel=0.1
    )


def test_processing_rate_tracks_input_at_steady_state():
    platform = collector_platform()
    for __ in range(6):
        platform.scribe.get_category("cat").append(3.0 * 60.0)
        platform.run_for(minutes=1)
    assert platform.metrics.latest(
        "job", "processing_rate_mb"
    ) == pytest.approx(3.0, rel=0.15)


def test_equation_1_lag():
    """time_lagged = bytes_lagged / processing capability."""
    platform = collector_platform()
    # Warm up throughput history, then dump a backlog.
    for __ in range(3):
        platform.scribe.get_category("cat").append(3.0 * 60.0)
        platform.run_for(minutes=1)
    platform.scribe.get_category("cat").append(4800.0)
    platform.run_for(minutes=2)
    lagged = platform.metrics.latest("job", "bytes_lagged_mb")
    time_lagged = platform.metrics.latest("job", "time_lagged")
    rate = platform.metrics.latest("job", "processing_rate_mb")
    assert lagged > 0
    assert time_lagged == pytest.approx(lagged / rate, rel=0.01)


def test_zero_throughput_with_backlog_is_infinite_lag():
    platform = collector_platform()
    # Tasks never ran (stop them before any processing history exists).
    for manager in platform.task_managers.values():
        for task in manager.tasks.values():
            task.stop()
    platform.scribe.get_category("cat").append(1000.0)
    platform.run_for(minutes=20)  # long enough that history is empty too
    assert platform.metrics.latest("job", "time_lagged") == INFINITE_LAG


def test_task_rate_stdev_reflects_skew():
    from repro.workloads import TrafficDriver

    platform = collector_platform()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=10.0)
    driver.add_source("cat", lambda t: 4.0)
    driver.start()
    category = platform.scribe.get_category("cat")
    category.set_weights([8.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1])
    platform.run_for(minutes=5)
    skewed = platform.metrics.latest("job", "task_rate_stdev")
    category.set_weights(None)
    platform.run_for(minutes=5)
    balanced = platform.metrics.latest("job", "task_rate_stdev")
    assert skewed > balanced
    assert balanced == pytest.approx(0.0, abs=0.1)


def test_running_tasks_gauge_and_reconciliation():
    platform = collector_platform()
    platform.run_for(minutes=2)
    assert platform.metrics.latest("job", "running_tasks") == 2.0
    # Stopping tasks behind the control plane's back is *corrected*: the
    # specs still exist, so the next refresh restarts them.
    for manager in platform.task_managers.values():
        manager.stop_job_tasks("job")
    platform.run_for(minutes=3)
    assert platform.metrics.latest("job", "running_tasks") == 2.0
