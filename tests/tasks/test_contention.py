"""Tests for container-level CPU contention (cgroup sharing)."""

import pytest

from repro import JobSpec, PlatformConfig, ResourceVector, Turbine
from repro.scribe import ScribeBus
from repro.tasks import RunningTask, TaskSpec


def make_task(rate=2.0, scribe=None, job_id="job"):
    scribe = scribe or ScribeBus()
    scribe.ensure_category("cat", 4)
    config = JobSpec(
        job_id=job_id, input_category="cat", rate_per_thread_mb=rate,
    ).to_provisioner_config()
    return RunningTask(TaskSpec.from_job_config(job_id, 0, config)), scribe


def make_task_full(rate=2.0, scribe=None, job_id="job"):
    scribe = scribe or ScribeBus()
    scribe.ensure_category("cat", 4)
    config = JobSpec(
        job_id=job_id, input_category="cat", rate_per_thread_mb=rate,
    ).to_provisioner_config()
    spec = TaskSpec.from_job_config(job_id, 0, config)
    return RunningTask(spec, scribe), scribe


class TestDesiredCores:
    def test_idle_task_wants_nothing(self):
        task, __ = make_task_full()
        assert task.desired_cores(10.0) == 0.0

    def test_saturated_task_wants_a_thread(self):
        task, scribe = make_task_full(rate=2.0)
        scribe.get_category("cat").append(1000.0)
        assert task.desired_cores(10.0) == pytest.approx(1.0)

    def test_light_backlog_wants_fraction(self):
        task, scribe = make_task_full(rate=2.0)
        scribe.get_category("cat").append(4.0)  # 0.4 MB/s over 10 s
        assert task.desired_cores(10.0) == pytest.approx(0.2)

    def test_stopped_task_wants_nothing(self):
        task, scribe = make_task_full()
        scribe.get_category("cat").append(100.0)
        task.stop()
        assert task.desired_cores(10.0) == 0.0


class TestThrottle:
    def test_throttle_caps_processing(self):
        task, scribe = make_task_full(rate=2.0)
        scribe.get_category("cat").append(1000.0)
        processed = task.step(10.0, throttle=0.5)
        assert processed == pytest.approx(10.0)  # half of 2 MB/s * 10 s

    def test_full_throttle_is_default(self):
        task, scribe = make_task_full(rate=2.0)
        scribe.get_category("cat").append(1000.0)
        assert task.step(10.0) == pytest.approx(20.0)


class TestContainerContention:
    def _overcommitted_platform(self):
        """A tiny container (2 CPU) hosting tasks that demand ~4 cores."""
        platform = Turbine.create(
            num_hosts=1, seed=77,
            config=PlatformConfig(
                num_shards=4, containers_per_host=1,
                container_capacity=ResourceVector(cpu=2.0, memory_gb=8.0),
            ),
        )
        platform.start()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=4,
                    rate_per_thread_mb=2.0),
            partitions=4,
        )
        platform.run_for(minutes=3)
        assert len(platform.tasks_of_job("job")) == 4
        return platform

    def test_overcommitted_container_slows_tasks(self):
        platform = self._overcommitted_platform()
        # Demand 8 MB/s of processing (4 saturated threads) on 2 cores.
        for __ in range(10):
            platform.scribe.get_category("cat").append(8.0 * 60.0)
            platform.run_for(minutes=1)
        lag = platform.job_lag_mb("job")
        # Only ~2 cores' worth (4 MB/s) processes: backlog grows by
        # ~4 MB/s * 600 s = 2400 MB.
        assert lag == pytest.approx(2400.0, rel=0.2)

    def test_within_capacity_no_throttle(self):
        platform = self._overcommitted_platform()
        # 2 MB/s total demand fits easily into 2 cores.
        for __ in range(10):
            platform.scribe.get_category("cat").append(2.0 * 60.0)
            platform.run_for(minutes=1)
        assert platform.job_lag_mb("job") < 150.0
