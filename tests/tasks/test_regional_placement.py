"""End-to-end regional placement through the Shard Manager."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.cluster import TupperwareCluster
from repro.sim import Engine


def regional_platform():
    """Two regions, two hosts each."""
    engine = Engine(seed=19)
    cluster = TupperwareCluster()
    for index in range(2):
        cluster.add_host(f"east-{index}", region="east")
        cluster.add_host(f"west-{index}", region="west")
    platform = Turbine(
        engine, cluster,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.start()
    return platform


def test_container_inherits_host_region():
    platform = regional_platform()
    for manager in platform.task_managers.values():
        host = platform.cluster.hosts[manager.container.host_id]
        assert manager.region == host.region


def test_pinned_shards_placed_in_region():
    platform = regional_platform()
    sm = platform.shard_manager
    from repro.tasks.shard import all_shard_ids

    pinned = all_shard_ids(sm.num_shards)[:10]
    for shard_id in pinned:
        sm.pin_shard_to_region(shard_id, "east")
    sm.rebalance()
    east_containers = {
        manager.container_id
        for manager in sm.live_managers()
        if manager.region == "east"
    }
    for shard_id in pinned:
        assert sm.assignment[shard_id] in east_containers


def test_pinned_shards_survive_failover_in_region():
    platform = regional_platform()
    sm = platform.shard_manager
    from repro.tasks.shard import all_shard_ids

    pinned = all_shard_ids(sm.num_shards)[:8]
    for shard_id in pinned:
        sm.pin_shard_to_region(shard_id, "east")
    sm.rebalance()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4)
    )
    platform.run_for(minutes=3)
    platform.cluster.fail_host("east-0")
    platform.run_for(minutes=3)
    east_containers = {
        manager.container_id
        for manager in sm.live_managers()
        if manager.region == "east"
    }
    for shard_id in pinned:
        assert sm.assignment[shard_id] in east_containers, (
            "failover must keep pinned shards in their region"
        )


def test_unpin_releases_constraint():
    platform = regional_platform()
    sm = platform.shard_manager
    sm.pin_shard_to_region("shard-00001", "west")
    sm.unpin_shard("shard-00001")
    assert "shard-00001" not in sm.shard_regions
    sm.unpin_shard("shard-00001")  # idempotent
