"""Entity-keyed randomness for the sharded task slices.

The parallel substrate's byte-identity proof rests on every stochastic
draw being a pure function of a stable entity key — never of the
hosting partition or the event interleaving. These tests pin the
primitives that proof is built from:

* the scalar splitmix64 finalizer and its numpy-vectorized form are
  bit-identical (the cache builder switches between them by count, so a
  divergence would silently split the fingerprint);
* draws depend only on ``(seed, job, task-index)``;
* the module-level shard-index memo agrees with the canonical paper
  mapping in ``repro.tasks.shard``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks.shard import shard_index_for_task
from repro.tasks.sliced import (
    MASK64,
    MULT_BASE,
    MULT_SPREAD,
    _crash_gap,
    _job_key,
    _mix64,
    _shard_indexes,
    _task_mult,
    _u01_from_word,
    _vmix64,
)

np = pytest.importorskip("numpy")


class TestMixEquivalence:
    """Scalar ``_mix64`` and vector ``_vmix64`` must agree bit-for-bit."""

    @given(st.integers(min_value=0, max_value=MASK64))
    @settings(max_examples=200)
    def test_vector_matches_scalar_word(self, word):
        vec = _vmix64(np.array([word], dtype=np.uint64))
        assert int(vec[0]) == _mix64(word)

    def test_vector_matches_scalar_over_task_index_range(self):
        # The exact expression _ensure_cache vectorizes: key + i * A (+ B).
        key = _job_key(20260808, "fleet/job-3")
        idx = np.arange(0, 4096, dtype=np.uint64)
        base = np.uint64(key) + idx * np.uint64(0x9E3779B97F4A7C15)
        vec = _vmix64(base.copy())
        for i in (0, 1, 255, 256, 257, 1023, 4095):
            scalar = _mix64((key + i * 0x9E3779B97F4A7C15) & MASK64)
            assert int(vec[i]) == scalar

    @given(st.integers(min_value=0, max_value=MASK64))
    @settings(max_examples=100)
    def test_u01_in_unit_interval(self, word):
        u = _u01_from_word(_mix64(word))
        assert 0.0 <= u < 1.0


class TestEntityKeyedDraws:
    """Draws are pure functions of (seed, job, index) — never placement."""

    def test_task_mult_in_documented_band(self):
        key = _job_key(7, "job-a")
        for tindex in range(100):
            mult = _task_mult(key, tindex)
            assert MULT_BASE <= mult < MULT_BASE + MULT_SPREAD

    def test_crash_gap_positive_and_reproducible(self):
        key = _job_key(7, "job-a")
        gaps = [_crash_gap(key, tindex, k, 86400.0)
                for tindex in range(20) for k in range(3)]
        assert all(gap > 0.0 and math.isfinite(gap) for gap in gaps)
        assert gaps == [_crash_gap(key, tindex, k, 86400.0)
                        for tindex in range(20) for k in range(3)]

    def test_different_entities_draw_differently(self):
        key = _job_key(7, "job-a")
        mults = {_task_mult(key, tindex) for tindex in range(64)}
        assert len(mults) == 64
        assert _task_mult(_job_key(7, "job-b"), 0) != _task_mult(key, 0)
        assert _task_mult(_job_key(8, "job-a"), 0) != _task_mult(key, 0)


class TestShardIndexMemo:
    def test_memo_matches_canonical_mapping(self):
        indexes = _shard_indexes("fleet/job-0", 64, 50)
        assert indexes[:50] == [
            shard_index_for_task(f"fleet/job-0/{i}", 64) for i in range(50)
        ]

    def test_memo_grows_without_rewriting_prefix(self):
        short = list(_shard_indexes("fleet/job-9", 32, 10))
        long = _shard_indexes("fleet/job-9", 32, 40)
        assert long[:10] == short
        assert len(long) >= 40
