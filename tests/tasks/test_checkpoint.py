"""Unit + property tests for the durable checkpoint plane.

The encode/decode pair must be a lossless round trip (canonical JSON, so
equal snapshots are equal bytes), decode must fail *typed* on anything
malformed, and restore must never crash: a checkpoint log trimmed past
the retention horizon falls back to the backlog horizon with an explicit
``checkpoint-fallback`` event instead of raising.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceUnavailableError
from repro.scribe.bus import ScribeBus
from repro.sim.engine import Engine
from repro.tasks.checkpoint import (
    CheckpointDecodeError,
    CheckpointPlane,
    TaskCheckpoint,
    checkpoint_log_name,
)

offsets_maps = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.", min_size=1,
        max_size=12,
    ),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    max_size=8,
)
snapshots = st.builds(
    TaskCheckpoint,
    job_id=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-/", min_size=1,
        max_size=20,
    ),
    time=st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
    offsets=offsets_maps,
    progress_mb=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(snapshot=snapshots)
    def test_decode_inverts_encode(self, snapshot):
        assert TaskCheckpoint.decode(snapshot.encode()) == snapshot

    @settings(max_examples=100, deadline=None)
    @given(snapshot=snapshots)
    def test_encode_is_canonical(self, snapshot):
        """Equal snapshots are equal bytes, and encoding is a fixed point
        under a decode round trip — the property the replicated command
        log's byte-compare audits rely on."""
        twin = TaskCheckpoint(
            job_id=snapshot.job_id, time=snapshot.time,
            offsets=dict(reversed(list(snapshot.offsets.items()))),
            progress_mb=snapshot.progress_mb,
        )
        assert twin.encode() == snapshot.encode()
        assert TaskCheckpoint.decode(snapshot.encode()).encode() == (
            snapshot.encode()
        )

    @settings(max_examples=200, deadline=None)
    @given(payload=st.text(max_size=80))
    def test_decode_arbitrary_text_never_raises_untyped(self, payload):
        """Garbage decodes to a snapshot or CheckpointDecodeError — never
        a stray KeyError/TypeError from deep inside restore."""
        try:
            TaskCheckpoint.decode(payload)
        except CheckpointDecodeError:
            pass

    @pytest.mark.parametrize("payload", [
        "not json at all",
        "[1, 2, 3]",
        '"a bare string"',
        json.dumps({"job_id": "j", "time": 1.0}),  # missing keys
        json.dumps({"job_id": "j", "time": 1.0, "offsets": "nope",
                    "progress_mb": 0.0}),
        json.dumps({"job_id": "j", "time": "soon", "offsets": {},
                    "progress_mb": 0.0}),
        json.dumps({"job_id": "j", "time": 1.0,
                    "offsets": {"p": [1, 2]}, "progress_mb": 0.0}),
    ])
    def test_decode_rejects_malformed_payloads(self, payload):
        with pytest.raises(CheckpointDecodeError):
            TaskCheckpoint.decode(payload)


class StubTaskService:
    """Just enough Task Service for the plane's periodic tick."""

    def __init__(self, job_ids=()):
        self.jobs = list(job_ids)
        self.available = True

    def job_ids(self):
        if not self.available:
            raise ServiceUnavailableError("task service down")
        return list(self.jobs)


def build_plane(jobs=("job",), **kwargs):
    engine = Engine(seed=1)
    scribe = ScribeBus()
    service = StubTaskService(jobs)
    plane = CheckpointPlane(engine, scribe, service, **kwargs)
    return engine, scribe, service, plane


def commit(scribe, job_id, offsets):
    for partition_id, offset in offsets.items():
        scribe.checkpoints.commit(job_id, partition_id, offset)


class TestPlane:
    def test_snapshot_then_wipe_then_restore(self):
        engine, scribe, service, plane = build_plane()
        commit(scribe, "job", {"p0": 10.0, "p1": 20.0})
        plane.snapshot_job("job")
        assert plane.appends == 1
        scribe.checkpoints.drop_job("job")  # the checkpoint-wipe fault
        plane.snapshot_job("job")  # next tick notices the regression
        assert plane.restores == 1
        assert scribe.checkpoints.snapshot("job") == {"p0": 10.0, "p1": 20.0}
        (event,) = list(plane.events)
        assert event.kind == "checkpoint-restore"
        assert "rolled 2 partitions forward" in event.detail

    def test_on_task_start_rolls_forward_after_wipe(self):
        engine, scribe, service, plane = build_plane()
        commit(scribe, "job", {"p0": 10.0})
        plane.snapshot_job("job")
        scribe.checkpoints.drop_job("job")
        assert plane.on_task_start("job") == 1
        assert scribe.checkpoints.get("job", "p0") == 10.0

    def test_on_task_start_without_log_is_a_noop(self):
        engine, scribe, service, plane = build_plane()
        assert plane.on_task_start("never-checkpointed") == 0
        assert plane.restores == 0
        assert list(plane.events) == []

    def test_fault_free_progress_appends_but_stays_silent(self):
        engine, scribe, service, plane = build_plane()
        for head in (5.0, 10.0, 15.0):
            commit(scribe, "job", {"p0": head})
            plane.snapshot_job("job")
        assert plane.appends == 3
        assert plane.restores == 0
        assert list(plane.events) == []

    def test_unchanged_cursors_append_nothing(self):
        engine, scribe, service, plane = build_plane()
        commit(scribe, "job", {"p0": 5.0})
        plane.snapshot_job("job")
        plane.snapshot_job("job")  # same offsets: no new record
        assert plane.appends == 1

    def test_trimmed_log_falls_back_to_backlog_horizon(self):
        """The satellite invariant: log trimmed past retention ⇒ loud,
        typed fallback — not a crash, and the job keeps checkpointing."""
        engine, scribe, service, plane = build_plane()
        commit(scribe, "job", {"p0": 10.0})
        plane.snapshot_job("job")
        log = scribe.logs[checkpoint_log_name("job")]
        log.trim(log.head_index)  # retention horizon passes everything
        scribe.checkpoints.drop_job("job")
        plane.snapshot_job("job")
        assert plane.fallbacks == 1
        (event,) = list(plane.events)
        assert event.kind == "checkpoint-fallback"
        assert "backlog horizon" in event.detail
        # The fallback resets the high-water mark, so the job's next
        # progress checkpoints cleanly instead of re-fallbacking forever.
        commit(scribe, "job", {"p0": 2.0})
        plane.snapshot_job("job")
        assert plane.appends == 2
        assert plane.fallbacks == 1

    def test_corrupt_newest_record_degrades_to_noop_restore(self):
        engine, scribe, service, plane = build_plane()
        commit(scribe, "job", {"p0": 10.0})
        plane.snapshot_job("job")
        scribe.logs[checkpoint_log_name("job")].append("corrupt{{{")
        scribe.checkpoints.drop_job("job")
        assert plane.on_task_start("job") == 0  # typed decode, no crash

    def test_retention_bounds_the_log(self):
        engine, scribe, service, plane = build_plane(retention=4)
        for head in range(1, 11):
            commit(scribe, "job", {"p0": float(head)})
            plane.snapshot_job("job")
        log = scribe.logs[checkpoint_log_name("job")]
        assert len(log) == 4
        assert plane.appends == 10

    def test_timer_snapshots_and_outage_skips_round(self):
        engine, scribe, service, plane = build_plane(interval=30.0)
        plane.start()
        commit(scribe, "job", {"p0": 5.0})
        engine.run_for(60.0)
        assert plane.appends == 1  # one change, one record
        service.available = False
        commit(scribe, "job", {"p0": 9.0})
        engine.run_for(60.0)
        assert plane.appends == 1  # outage: rounds skipped, no crash
        service.available = True
        engine.run_for(60.0)
        assert plane.appends == 2

    @settings(max_examples=60, deadline=None)
    @given(
        offsets=st.dictionaries(
            st.sampled_from(["p0", "p1", "p2", "p3"]),
            st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
            min_size=1, max_size=4,
        ),
        trim_everything=st.booleans(),
    )
    def test_wipe_recovery_restores_or_falls_back_never_raises(
        self, offsets, trim_everything
    ):
        """For any committed offsets, wipe + (maybe) trim ⇒ the next
        snapshot round either rolls the cursors back to the snapshot or
        records a fallback — exactly one of the two, and never an
        exception."""
        engine, scribe, service, plane = build_plane()
        commit(scribe, "job", offsets)
        plane.snapshot_job("job")
        log = scribe.logs[checkpoint_log_name("job")]
        if trim_everything:
            log.trim(log.head_index)
        scribe.checkpoints.drop_job("job")
        plane.snapshot_job("job")
        if trim_everything:
            assert (plane.restores, plane.fallbacks) == (0, 1)
            assert scribe.checkpoints.snapshot("job") == {}
        else:
            assert (plane.restores, plane.fallbacks) == (1, 0)
            assert scribe.checkpoints.snapshot("job") == offsets
