"""Tests for the optional per-task metric recording path."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.workloads import TrafficDriver


def run_platform(record: bool):
    platform = Turbine.create(
        num_hosts=2, seed=53,
        config=PlatformConfig(num_shards=8, containers_per_host=2,
                              record_task_metrics=record),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2,
                rate_per_thread_mb=4.0),
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("cat", lambda t: 4.0)
    driver.start()
    platform.run_for(minutes=10)
    return platform


def test_task_metrics_recorded_when_enabled():
    platform = run_platform(record=True)
    cpu = platform.metrics.latest("job:0", "cpu_used")
    assert cpu is not None and cpu > 0
    assert platform.metrics.latest("job:0", "memory_gb") > 0
    assert platform.metrics.latest("job:1", "rate_mb") is not None


def test_task_metrics_absent_by_default():
    platform = run_platform(record=False)
    assert platform.metrics.latest("job:0", "cpu_used") is None
    # Job-level metrics are always recorded regardless.
    assert platform.metrics.latest("job", "processing_rate_mb") > 0
