"""Tests for the Provision Service: stage cutting, sizing, deployment."""

import pytest

from repro import PlatformConfig, Turbine
from repro.provision import (
    Aggregate,
    Field,
    Filter,
    Join,
    ProvisionService,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
)

EVENTS = Schema.of(
    Field("key", "int"), Field("valid", "bool"), Field("payload", "string"),
)


def simple_query(rate=4.0):
    return Query(
        "pipeline",
        Sink(Filter(Source("events", EVENTS, rate_mb=rate), "valid"), "out"),
    )


def shuffled_aggregation(rate=10.0):
    agg = Aggregate(
        Shuffle(Source("events", EVENTS, rate_mb=rate), "key"),
        group_by="key",
        aggregates=("count",),
        key_cardinality=2_000_000,
    )
    return Query("pipeline", Sink(agg, "agg_out"))


class TestStageCutting:
    def test_shuffle_free_query_is_one_job(self):
        pipeline = ProvisionService().plan(simple_query())
        assert pipeline.num_jobs == 1
        assert pipeline.stages[0].input_category == "events"
        assert pipeline.stages[0].output_category == "out"
        assert pipeline.intermediate_categories == []

    def test_aggregation_after_shuffle_is_two_jobs(self):
        """"A stream pipeline may contain multiple jobs, for example
        aggregation after data shuffling."""
        pipeline = ProvisionService().plan(shuffled_aggregation())
        assert pipeline.num_jobs == 2
        first, second = pipeline.stages
        assert first.input_category == "events"
        assert first.output_category == second.input_category
        assert second.input_category.startswith("pipeline/stage-")
        assert second.output_category == "agg_out"
        assert len(pipeline.intermediate_categories) == 1

    def test_stateful_stage_flagged(self):
        pipeline = ProvisionService().plan(shuffled_aggregation())
        assert not pipeline.stages[0].stateful
        assert pipeline.stages[1].stateful
        assert pipeline.stages[1].key_cardinality == 2_000_000

    def test_join_of_two_sources_creates_three_stages(self):
        left = Source("left", EVENTS, rate_mb=3.0)
        right = Source(
            "right", Schema.of(Field("key", "int"), Field("tag")), rate_mb=2.0
        )
        join = Join(Shuffle(left, "key"), Shuffle(right, "key"), key="key")
        pipeline = ProvisionService().plan(Query("j", Sink(join, "out")))
        assert pipeline.num_jobs == 3
        join_stage = pipeline.stages[-1]
        assert join_stage.stateful
        # Both upstream stages write into the join's intermediate.
        upstream_outputs = {
            stage.output_category for stage in pipeline.stages[:-1]
        }
        assert upstream_outputs == {join_stage.input_category}


class TestSizing:
    def test_task_count_scales_with_rate(self):
        small = ProvisionService().plan(simple_query(rate=1.0))
        large = ProvisionService().plan(simple_query(rate=20.0))
        assert small.job_specs[0].task_count < large.job_specs[0].task_count

    def test_stateful_spec_carries_cardinality(self):
        pipeline = ProvisionService().plan(shuffled_aggregation())
        agg_spec = pipeline.job_specs[1]
        assert agg_spec.stateful
        assert agg_spec.state_key_cardinality == 2_000_000

    def test_job_ids_namespaced_by_query(self):
        pipeline = ProvisionService().plan(shuffled_aggregation())
        assert [spec.job_id for spec in pipeline.job_specs] == [
            "pipeline/stage-0", "pipeline/stage-1",
        ]


class TestDeployment:
    def test_provision_on_platform_runs_end_to_end(self):
        platform = Turbine.create(
            num_hosts=3, seed=2,
            config=PlatformConfig(num_shards=32, containers_per_host=2),
        )
        platform.start()
        pipeline = ProvisionService().provision(shuffled_aggregation(), platform)
        platform.run_for(minutes=3)
        for spec in pipeline.job_specs:
            assert platform.tasks_of_job(spec.job_id), (
                f"stage {spec.job_id} must be scheduled"
            )
        # The intermediate category exists on the bus.
        assert pipeline.intermediate_categories[0] in (
            platform.scribe.categories
        )

    def test_data_flows_across_the_stage_boundary(self):
        """Bytes written to the source category are processed by stage 0;
        stage 1 reads the intermediate. Stage 0's simulated tasks do not
        literally re-publish bytes (the runtime models consumption only),
        so we drive the intermediate directly and check stage 1 drains it —
        the wiring under test is the category plumbing."""
        platform = Turbine.create(
            num_hosts=3, seed=2,
            config=PlatformConfig(num_shards=32, containers_per_host=2),
        )
        platform.start()
        pipeline = ProvisionService().provision(shuffled_aggregation(), platform)
        platform.run_for(minutes=3)
        intermediate = pipeline.intermediate_categories[0]
        platform.scribe.get_category(intermediate).append(30.0)
        platform.run_for(minutes=5)
        assert platform.job_lag_mb("pipeline/stage-1") == pytest.approx(
            0.0, abs=1e-6
        )
