"""Tests for the query API and schema validation."""

import pytest

from repro.provision import (
    Aggregate,
    Field,
    Filter,
    Join,
    Project,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
)
from repro.provision.query import QueryError

CLICKS = Schema.of(
    Field("user_id", "int"),
    Field("url", "string"),
    Field("is_bot", "bool"),
    Field("bytes", "float"),
)


def clicks_source(rate=4.0):
    return Source(category="clicks", schema=CLICKS, rate_mb=rate)


class TestSchema:
    def test_field_validation(self):
        with pytest.raises(QueryError):
            Field("", "int")
        with pytest.raises(QueryError):
            Field("x", "decimal")

    def test_project_and_lookup(self):
        projected = CLICKS.project(["url", "bytes"])
        assert projected.names() == ["url", "bytes"]
        with pytest.raises(QueryError):
            CLICKS.project(["nope"])

    def test_merge_rejects_duplicates(self):
        with pytest.raises(QueryError):
            CLICKS.merge(Schema.of(Field("url")))


class TestValidation:
    def test_valid_pipeline_derives_schema(self):
        source = clicks_source()
        filtered = Filter(source, "is_bot", selectivity=0.9)
        projected = Project(filtered, ("user_id", "bytes"))
        query = Query("q", Sink(projected, "out"))
        schema = query.validate()
        assert schema.names() == ["user_id", "bytes"]

    def test_filter_unknown_field_rejected(self):
        query = Query("q", Sink(Filter(clicks_source(), "nope"), "out"))
        with pytest.raises(QueryError):
            query.validate()

    def test_aggregate_output_schema(self):
        agg = Aggregate(
            Shuffle(clicks_source(), "user_id"),
            group_by="user_id",
            aggregates=("count", "sum:bytes"),
        )
        schema = Query("q", Sink(agg, "out")).validate()
        assert schema.names() == ["user_id", "count", "sum_bytes"]

    def test_aggregate_unknown_function_rejected(self):
        agg = Aggregate(clicks_source(), "user_id", ("median",))
        with pytest.raises(QueryError):
            Query("q", Sink(agg, "out")).validate()

    def test_join_schema_merges_sides(self):
        users = Source(
            "users", Schema.of(Field("user_id", "int"), Field("country")),
        )
        join = Join(clicks_source(), users, key="user_id")
        schema = Query("q", Sink(join, "out")).validate()
        assert "country" in schema.names()
        assert schema.names().count("user_id") == 1

    def test_join_missing_key_rejected(self):
        users = Source("users", Schema.of(Field("uid", "int")))
        join = Join(clicks_source(), users, key="user_id")
        with pytest.raises(QueryError):
            Query("q", Sink(join, "out")).validate()

    def test_shuffle_key_must_exist(self):
        with pytest.raises(QueryError):
            Query("q", Sink(Shuffle(clicks_source(), "nope"), "out")).validate()

    def test_selectivity_bounds(self):
        with pytest.raises(QueryError):
            Filter(clicks_source(), "is_bot", selectivity=0.0)
        with pytest.raises(QueryError):
            Filter(clicks_source(), "is_bot", selectivity=1.5)


def test_operators_topological_order():
    source = clicks_source()
    filtered = Filter(source, "is_bot")
    sink = Sink(filtered, "out")
    ops = Query("q", sink).operators()
    assert ops.index(source) < ops.index(filtered) < ops.index(sink)
