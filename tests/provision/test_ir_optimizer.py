"""Tests for IR compilation and the optimizer rewrites."""

import pytest

from repro.provision import (
    Aggregate,
    Field,
    Filter,
    Project,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
    compile_query,
    optimize,
)

EVENTS = Schema.of(
    Field("key", "int"),
    Field("valid", "bool"),
    Field("payload", "string"),
    Field("extra", "string"),
)


def source(rate=10.0):
    return Source("events", EVENTS, rate_mb=rate)


def kinds_in_order(graph):
    return [node.kind for node in graph.topological()]


class TestCompile:
    def test_simple_chain(self):
        query = Query("q", Sink(Filter(source(), "valid"), "out"))
        graph = compile_query(query)
        assert kinds_in_order(graph) == ["source", "filter", "sink"]

    def test_rate_propagation(self):
        query = Query(
            "q",
            Sink(Filter(source(rate=10.0), "valid", selectivity=0.3), "out"),
        )
        graph = compile_query(query)
        sink_node = graph.sink
        assert sink_node.rate_mb == pytest.approx(3.0)

    def test_aggregate_reduces_rate(self):
        agg = Aggregate(Shuffle(source(rate=10.0), "key"), "key", ("count",))
        graph = compile_query(Query("q", Sink(agg, "out")))
        assert graph.sink.rate_mb < 10.0

    def test_stateful_flag(self):
        agg = Aggregate(Shuffle(source(), "key"), "key", ("count",))
        graph = compile_query(Query("q", Sink(agg, "out")))
        stateful = [n.kind for n in graph.nodes if n.stateful]
        assert stateful == ["aggregate"]


class TestOptimizer:
    def test_filter_pushed_below_shuffle(self):
        """filter(shuffle(x)) → shuffle(filter(x)): less data crosses the
        Scribe-backed stage boundary."""
        query = Query(
            "q",
            Sink(Filter(Shuffle(source(), "key"), "valid"), "out"),
        )
        graph = optimize(compile_query(query))
        assert kinds_in_order(graph) == ["source", "filter", "shuffle", "sink"]

    def test_projection_pushed_when_key_kept(self):
        query = Query(
            "q",
            Sink(Project(Shuffle(source(), "key"), ("key", "payload")), "out"),
        )
        graph = optimize(compile_query(query))
        assert kinds_in_order(graph) == ["source", "project", "shuffle", "sink"]

    def test_projection_not_pushed_when_key_dropped(self):
        query = Query(
            "q",
            Sink(Project(Shuffle(source(), "key"), ("payload",)), "out"),
        )
        graph = optimize(compile_query(query))
        assert kinds_in_order(graph) == ["source", "shuffle", "project", "sink"]

    def test_adjacent_filters_fuse(self):
        inner = Filter(source(), "valid", selectivity=0.5)
        outer = Filter(inner, "valid", selectivity=0.4)
        graph = optimize(compile_query(Query("q", Sink(outer, "out"))))
        filters = [n for n in graph.nodes if n.kind == "filter"]
        assert len(filters) == 1
        assert filters[0].op.selectivity == pytest.approx(0.2)

    def test_output_schema_preserved(self):
        query = Query(
            "q",
            Sink(
                Project(
                    Filter(Shuffle(source(), "key"), "valid"),
                    ("key", "payload"),
                ),
                "out",
            ),
        )
        before = compile_query(query)
        names_before = before.sink.op.output_schema().names()
        after = optimize(before)
        assert after.sink.op.output_schema().names() == names_before

    def test_pushdown_reduces_shuffle_traffic(self):
        query = Query(
            "q",
            Sink(Filter(Shuffle(source(rate=10.0), "key"), "valid",
                        selectivity=0.2), "out"),
        )
        unoptimized = compile_query(query)
        shuffle_rate_before = next(
            n.rate_mb for n in unoptimized.topological() if n.kind == "shuffle"
        )
        optimized = optimize(compile_query(query))
        shuffle_rate_after = next(
            n.rate_mb for n in optimized.topological() if n.kind == "shuffle"
        )
        assert shuffle_rate_before == pytest.approx(10.0)
        assert shuffle_rate_after == pytest.approx(2.0)

    def test_idempotent(self):
        query = Query(
            "q",
            Sink(Filter(Shuffle(source(), "key"), "valid"), "out"),
        )
        graph = optimize(compile_query(query))
        again = optimize(graph)
        assert kinds_in_order(again) == kinds_in_order(graph)
