"""End-to-end data flow through a provisioned multi-stage pipeline.

Bytes pushed into the source category must cross the Scribe-backed stage
boundary: stage 0 processes, publishes its reduced output into the
intermediate category, and stage 1 consumes it — the paper's "aggregation
after data shuffling" pipeline actually flowing.
"""

import pytest

from repro import PlatformConfig, Turbine
from repro.provision import (
    Aggregate,
    Field,
    Filter,
    ProvisionService,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
)
from repro.workloads import TrafficDriver

EVENTS = Schema.of(
    Field("key", "int"), Field("valid", "bool"), Field("payload", "string"),
)


def pipeline_query():
    agg = Aggregate(
        Shuffle(
            Filter(Source("events", EVENTS, rate_mb=4.0), "valid",
                   selectivity=0.5),
            "key",
        ),
        group_by="key", aggregates=("count",), key_cardinality=100_000,
    )
    return Query("flow", Sink(agg, "flow_out"))


def deployed_platform():
    platform = Turbine.create(
        num_hosts=3, seed=29,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.start()
    pipeline = ProvisionService().provision(pipeline_query(), platform)
    platform.run_for(minutes=3)
    return platform, pipeline


def test_stage0_publishes_reduced_output():
    platform, pipeline = deployed_platform()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("events", lambda t: 4.0)
    driver.start()
    platform.run_for(minutes=20)
    intermediate = platform.scribe.get_category(
        pipeline.intermediate_categories[0]
    )
    appended = 4.0 * 60 * 20  # MB pushed into the source
    # Stage 0 filters half away before the shuffle boundary.
    assert intermediate.total_head() == pytest.approx(appended * 0.5, rel=0.1)


def test_final_sink_receives_aggregated_output():
    platform, pipeline = deployed_platform()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("events", lambda t: 4.0)
    driver.start()
    platform.run_for(minutes=20)
    sink = platform.scribe.get_category("flow_out")
    appended = 4.0 * 60 * 20
    # filter 0.5, then aggregate 0.1 → 5% of input reaches the sink.
    assert sink.total_head() == pytest.approx(appended * 0.05, rel=0.15)


def test_both_stages_keep_up():
    platform, pipeline = deployed_platform()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("events", lambda t: 4.0)
    driver.start()
    platform.run_for(minutes=20)
    for spec in pipeline.job_specs:
        lag = platform.metrics.latest(spec.job_id, "time_lagged")
        assert lag is not None and lag < 90.0, f"{spec.job_id} lags"


def test_output_ratio_on_specs():
    pipeline = ProvisionService().plan(pipeline_query())
    stage0, stage1 = pipeline.job_specs
    assert stage0.output_ratio == pytest.approx(0.5)
    assert stage1.output_ratio == pytest.approx(0.1)


def test_self_loop_rejected():
    from repro.errors import JobStoreError
    from repro.jobs import JobSpec

    with pytest.raises(JobStoreError, match="own input"):
        JobSpec(job_id="loop", input_category="cat", output_category="cat")
