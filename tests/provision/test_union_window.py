"""Tests for the Union and Window operators."""

import pytest

from repro.provision import (
    Aggregate,
    Field,
    Filter,
    ProvisionService,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
    Union,
    Window,
    compile_query,
    optimize,
)
from repro.provision.query import QueryError

EVENTS = Schema.of(
    Field("key", "int"), Field("valid", "bool"), Field("payload", "string"),
)


class TestUnion:
    def test_matching_schemas_merge(self):
        left = Source("left", EVENTS, rate_mb=2.0)
        right = Source("right", EVENTS, rate_mb=3.0)
        query = Query("u", Sink(Union(left, right), "out"))
        assert query.validate() == EVENTS
        graph = compile_query(query)
        assert graph.sink.rate_mb == pytest.approx(5.0)

    def test_mismatched_schemas_rejected(self):
        left = Source("left", EVENTS)
        right = Source("right", Schema.of(Field("other")))
        with pytest.raises(QueryError, match="share a schema"):
            Query("u", Sink(Union(left, right), "out")).validate()

    def test_union_of_sources_cuts_into_merge_stage(self):
        """Two source stages feed one merge stage through a shared
        intermediate category."""
        left = Source("left", EVENTS, rate_mb=2.0)
        right = Source("right", EVENTS, rate_mb=3.0)
        union = Union(Filter(left, "valid"), Filter(right, "valid"))
        pipeline = ProvisionService().plan(Query("u", Sink(union, "out")))
        assert pipeline.num_jobs == 3
        merge_stage = pipeline.stages[-1]
        assert not merge_stage.stateful
        upstream_outputs = {
            stage.output_category for stage in pipeline.stages[:-1]
        }
        assert upstream_outputs == {merge_stage.input_category}


class TestWindow:
    def test_schema_passthrough_and_key_check(self):
        window = Window(Source("events", EVENTS), key="key")
        assert Query("w", Sink(window, "out")).validate() == EVENTS
        with pytest.raises(QueryError):
            Window(Source("events", EVENTS), key="nope").output_schema()

    def test_invalid_parameters_rejected(self):
        source = Source("events", EVENTS)
        with pytest.raises(QueryError):
            Window(source, key="key", window_seconds=0.0)
        with pytest.raises(QueryError):
            Window(source, key="key", key_cardinality=0)

    def test_window_is_stateful_with_reduction(self):
        window = Window(
            Shuffle(Source("events", EVENTS, rate_mb=10.0), "key"),
            key="key", key_cardinality=500_000,
        )
        graph = optimize(compile_query(Query("w", Sink(window, "out"))))
        window_node = next(n for n in graph.nodes if n.kind == "window")
        assert window_node.stateful
        assert window_node.rate_mb == pytest.approx(3.0)

    def test_windowed_pre_aggregation_pipeline(self):
        """The classic two-level aggregation: per-window partials before
        the shuffle, final aggregation after — less shuffle traffic."""
        pre = Window(Source("events", EVENTS, rate_mb=10.0), key="key",
                     key_cardinality=200_000)
        final = Aggregate(Shuffle(pre, "key"), group_by="key",
                          aggregates=("count",), key_cardinality=200_000)
        pipeline = ProvisionService().plan(Query("w", Sink(final, "out")))
        assert pipeline.num_jobs == 2
        assert pipeline.stages[0].stateful, "the window stage keeps state"
        assert pipeline.stages[0].reduction_ratio == pytest.approx(0.3)
        assert pipeline.job_specs[0].state_key_cardinality == 200_000
