"""Tests for batch-mode execution over the warehouse."""

import pytest

from repro.provision import (
    Aggregate,
    Field,
    Filter,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
)
from repro.provision.batch import BatchRunner
from repro.provision.query import QueryError
from repro.warehouse import DataWarehouse

EVENTS = Schema.of(
    Field("key", "int"), Field("valid", "bool"), Field("payload", "string"),
)


def backfill_query(selectivity=0.5):
    agg = Aggregate(
        Shuffle(
            Filter(Source("events", EVENTS, rate_mb=5.0), "valid",
                   selectivity=selectivity),
            "key",
        ),
        group_by="key",
        aggregates=("count",),
    )
    return Query("backfill", Sink(agg, "out"))


def warehouse_with_data(days=7, daily_mb=100.0):
    warehouse = DataWarehouse()
    warehouse.land_daily("events", [daily_mb] * days)
    return warehouse


class TestBatchRun:
    def test_reads_the_requested_range(self):
        runner = BatchRunner(warehouse_with_data())
        result = runner.run(backfill_query(), first_day=0, last_day=6)
        assert result.total_input_mb == pytest.approx(700.0)
        result_partial = runner.run(backfill_query(), first_day=2, last_day=4)
        assert result_partial.total_input_mb == pytest.approx(300.0)

    def test_stage_reduction_flows_through(self):
        """Stage 0 filters half away; stage 1 aggregates 10:1."""
        runner = BatchRunner(warehouse_with_data())
        result = runner.run(backfill_query(selectivity=0.5), 0, 6)
        assert len(result.stages) == 2
        assert result.stages[0].output_mb == pytest.approx(350.0)
        assert result.stages[1].input_mb == pytest.approx(350.0)
        assert result.output_mb == pytest.approx(35.0)

    def test_more_workers_run_faster(self):
        runner = BatchRunner(warehouse_with_data())
        slow = runner.run(backfill_query(), 0, 6, workers=2)
        fast = runner.run(backfill_query(), 0, 6, workers=8)
        assert fast.total_duration_seconds == pytest.approx(
            slow.total_duration_seconds / 4
        )

    def test_duration_is_sum_of_sequential_stages(self):
        runner = BatchRunner(warehouse_with_data(), rate_per_worker_mb=10.0)
        result = runner.run(backfill_query(selectivity=0.5), 0, 6, workers=1)
        expected = 700.0 / 10.0 + 350.0 / 10.0
        assert result.total_duration_seconds == pytest.approx(expected)

    def test_missing_table_rejected(self):
        runner = BatchRunner(DataWarehouse())
        from repro.warehouse.tables import WarehouseError

        with pytest.raises(WarehouseError):
            runner.run(backfill_query(), 0, 6)

    def test_invalid_parameters_rejected(self):
        runner = BatchRunner(warehouse_with_data())
        with pytest.raises(QueryError):
            runner.run(backfill_query(), 0, 6, workers=0)
        with pytest.raises(QueryError):
            BatchRunner(warehouse_with_data(), rate_per_worker_mb=0.0)

    def test_empty_range_is_free(self):
        runner = BatchRunner(warehouse_with_data(days=3))
        result = runner.run(backfill_query(), first_day=10, last_day=12)
        assert result.total_input_mb == 0.0
        assert result.total_duration_seconds == 0.0
