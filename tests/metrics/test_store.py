"""Unit tests for the MetricStore."""

from repro.metrics import MetricStore


def test_series_created_on_first_use():
    store = MetricStore()
    series = store.series("job-a", "input_rate")
    assert len(series) == 0
    assert store.series("job-a", "input_rate") is series


def test_record_and_latest():
    store = MetricStore()
    store.record("job-a", "input_rate", 10.0, 100.0)
    assert store.latest("job-a", "input_rate") == 100.0


def test_latest_missing_is_none():
    assert MetricStore().latest("nope", "nope") is None


def test_entities_are_isolated():
    store = MetricStore()
    store.record("job-a", "input_rate", 0.0, 1.0)
    store.record("job-b", "input_rate", 0.0, 2.0)
    assert store.latest("job-a", "input_rate") == 1.0
    assert store.latest("job-b", "input_rate") == 2.0


def test_entities_with_metric_sorted():
    store = MetricStore()
    store.record("zeta", "lag", 0.0, 1.0)
    store.record("alpha", "lag", 0.0, 1.0)
    store.record("alpha", "other", 0.0, 1.0)
    assert store.entities_with("lag") == ["alpha", "zeta"]


def test_drop_entity():
    store = MetricStore()
    store.record("job-a", "lag", 0.0, 1.0)
    store.record("job-a", "rate", 0.0, 1.0)
    store.record("job-b", "lag", 0.0, 1.0)
    store.drop_entity("job-a")
    assert store.latest("job-a", "lag") is None
    assert store.latest("job-b", "lag") == 1.0


def test_custom_retention_honored():
    store = MetricStore(default_retention=5.0)
    series = store.series("job-a", "lag")
    assert series.retention == 5.0
    long_series = store.series("job-a", "history", retention=100.0)
    assert long_series.retention == 100.0
