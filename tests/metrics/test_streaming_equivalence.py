"""Property tests: the streaming metrics engine ≡ a naive rescan.

Two series ingest the *same* sample stream: one with the streaming read
paths on (incremental window aggregates, rollup buckets, histogram
sketches), one with them off (slice-and-rescan over the ring). Every
read the scaler, balancer, and pattern analyzer perform must agree
**bit for bit** between the two — not approximately, byte-identically —
because the engine is sold as a pure read-path optimization and the
golden determinism suite compares whole-platform runs on equality.

The exactness argument under test: both paths produce the *correctly
rounded* window sum (``math.fsum`` on one side, a Shewchuk expansion
maintained under adds and evictions on the other), max is exact under
any regrouping, and the sketch's integer bucket counts add/remove
symmetrically. See ``repro/metrics/window.py``.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.aggregate import SKETCH_MIN_VALUES, percentile
from repro.metrics.series import TimeSeries
from repro.metrics.sketch import DEFAULT_ALPHA, HistogramSketch
from repro.metrics.store import MetricStore

#: Trailing windows exercised on every step: shorter than retention,
#: comparable to it, and longer than it (the whole-ring case).
WINDOWS = (30.0, 120.0, 450.0)
RETENTION = 400.0

#: Mixed magnitudes make float non-associativity visible: a naive
#: left-to-right sum of these streams differs from fsum in the last
#: bits, so any shortcut in the streaming path would fail == here.
samples = st.tuples(
    st.floats(min_value=0.05, max_value=30.0, allow_nan=False),
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_subnormal=False,
    ),
    st.sampled_from([1.0, 1e-8, 1e8]),
)
streams = st.lists(samples, min_size=1, max_size=120)


def ingest_pair(stream, **kwargs):
    fast = TimeSeries(streaming=True, **kwargs)
    naive = TimeSeries(streaming=False, **kwargs)
    now = 0.0
    for dt, value, scale in stream:
        now += dt
        fast.record(now, value * scale)
        naive.record(now, value * scale)
    return fast, naive, now


class TestTrailingWindows:
    @settings(max_examples=50, deadline=None)
    @given(stream=streams)
    def test_average_and_max_match_bit_for_bit(self, stream):
        fast = TimeSeries(retention=RETENTION, streaming=True)
        naive = TimeSeries(retention=RETENTION, streaming=False)
        now = 0.0
        for dt, value, scale in stream:
            now += dt
            sample = value * scale
            fast.record(now, sample)
            naive.record(now, sample)
            for duration in WINDOWS:
                assert fast.average_over(duration, now) == naive.average_over(
                    duration, now
                )
                assert fast.max_over(duration, now) == naive.max_over(
                    duration, now
                )
        # Reads with ``now`` ahead of the newest sample (the scaler asks
        # at decision time, not at ingest time) must also agree as the
        # window slides off the data.
        for ahead in (0.5, 40.0, 500.0):
            for duration in WINDOWS:
                assert fast.average_over(duration, now + ahead) == (
                    naive.average_over(duration, now + ahead)
                )
                assert fast.max_over(duration, now + ahead) == (
                    naive.max_over(duration, now + ahead)
                )
        assert fast.all_points() == naive.all_points()
        assert len(fast) == len(naive)

    @settings(max_examples=25, deadline=None)
    @given(stream=streams)
    def test_sketched_percentiles_match_bit_for_bit(self, stream):
        """Streaming and one-shot sketches agree exactly (integer counts)."""
        fast = TimeSeries(retention=RETENTION, streaming=True)
        naive = TimeSeries(retention=RETENTION, streaming=False)
        now = 0.0
        for dt, value, scale in stream:
            now += dt
            sample = value * scale
            fast.record(now, sample)
            naive.record(now, sample)
            for q in (50.0, 95.0):
                assert fast.percentile_over(
                    120.0, now, q, tolerance=0.01
                ) == naive.percentile_over(120.0, now, q, tolerance=0.01)
        # Exact path (no tolerance) as a control.
        assert fast.percentile_over(120.0, now, 95.0) == (
            naive.percentile_over(120.0, now, 95.0)
        )

    @settings(max_examples=25, deadline=None)
    @given(stream=streams, toggle_at=st.integers(min_value=0, max_value=119))
    def test_toggling_streaming_mid_stream_is_invisible(
        self, stream, toggle_at
    ):
        """Off-and-back-on rebuilds state lazily; reads never go stale."""
        fast = TimeSeries(retention=RETENTION, streaming=True)
        naive = TimeSeries(retention=RETENTION, streaming=False)
        now = 0.0
        for index, (dt, value, scale) in enumerate(stream):
            if index == toggle_at:
                fast.set_streaming(False)
                fast.set_streaming(True)
            now += dt
            sample = value * scale
            fast.record(now, sample)
            naive.record(now, sample)
            assert fast.average_over(120.0, now) == naive.average_over(
                120.0, now
            )
            assert fast.max_over(120.0, now) == naive.max_over(120.0, now)

    def test_long_stream_with_compactions_stays_identical(self):
        """Retention churn drives ring compaction under live window state."""
        rng = random.Random(42)
        fast = TimeSeries(retention=500.0, streaming=True)
        naive = TimeSeries(retention=500.0, streaming=False)
        now = 0.0
        for _ in range(5000):
            now += rng.uniform(0.1, 5.0)
            sample = rng.uniform(-1000.0, 1000.0) * rng.choice(
                [1.0, 1e-8, 1e8]
            )
            fast.record(now, sample)
            naive.record(now, sample)
            for duration in WINDOWS:
                assert fast.average_over(duration, now) == naive.average_over(
                    duration, now
                )
                assert fast.max_over(duration, now) == naive.max_over(
                    duration, now
                )
        assert fast.compactions > 0, "retention churn must compact the ring"
        assert fast.window_fast > 0.9 * fast.window_queries
        assert fast.all_points() == naive.all_points()


class TestRollupRanges:
    @settings(max_examples=50, deadline=None)
    @given(
        stream=st.lists(samples, min_size=5, max_size=120),
        ranges=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1, max_size=10,
        ),
    )
    def test_aggregate_between_matches_raw_scan(self, stream, ranges):
        fast, naive, now = ingest_pair(
            stream, retention=3600.0, rollup_period=50.0
        )
        for a, b in ranges:
            start, end = sorted((a * now, b * now))
            assert fast.aggregate_between(start, end) == (
                naive.aggregate_between(start, end)
            )
            assert fast.mean_between(start, end) == naive.mean_between(
                start, end
            )
            assert fast.max_between(start, end) == naive.max_between(
                start, end
            )

    def test_pattern_analyzer_shape_reads_hit_rollups(self):
        """A 15-day series at 60 s cadence: random historical ranges are
        served from 5-minute buckets, bit-identical to the raw scan."""
        rng = random.Random(7)
        fast = TimeSeries(retention=15 * 86400.0, streaming=True)
        naive = TimeSeries(retention=15 * 86400.0, streaming=False)
        assert fast._rollup is not None, (
            "long-retention series must auto-attach a rollup tier"
        )
        now = 0.0
        for _ in range(20_000):
            now += 60.0
            sample = rng.uniform(0.0, 50.0) * rng.choice([1.0, 1e-6, 1e6])
            fast.record(now, sample)
            naive.record(now, sample)
        for _ in range(200):
            start = rng.uniform(0.0, now)
            end = start + rng.uniform(0.0, now - start)
            assert fast.aggregate_between(start, end) == (
                naive.aggregate_between(start, end)
            )
        assert fast.rollup_reads > 0, "ranges this wide must use buckets"


class TestStoreBatching:
    entities = st.sampled_from(["job-a", "job-b", "task-0", "task-1"])
    metrics = st.sampled_from(["cpu_used", "rate_mb", "lag"])
    batches = st.lists(
        st.lists(
            st.tuples(
                entities, metrics,
                st.floats(
                    min_value=-1e9, max_value=1e9,
                    allow_nan=False, allow_subnormal=False,
                ),
            ),
            max_size=12,
        ),
        min_size=1, max_size=20,
    )

    @settings(max_examples=50, deadline=None)
    @given(batches=batches)
    def test_record_many_matches_record_loop(self, batches):
        batched = MetricStore()
        looped = MetricStore()
        now = 0.0
        for batch in batches:
            now += 60.0
            ingested = batched.record_many(now, batch)
            assert ingested == len(batch)
            for entity, metric, value in batch:
                looped.record(entity, metric, now, value)
        assert batched.samples_ingested == looped.samples_ingested
        for (entity, metric), series in looped._series.items():
            assert batched.series(entity, metric).all_points() == (
                series.all_points()
            )
        for metric in ("cpu_used", "rate_mb", "lag"):
            assert batched.entities_with(metric) == looped.entities_with(metric)

    def test_record_many_drops_whole_batch_while_unavailable(self):
        store = MetricStore()
        store.fail()
        assert store.record_many(0.0, [("e", "m", 1.0), ("e", "m2", 2.0)]) == 0
        assert store.dropped_points == 2
        store.recover()
        assert store.record_many(60.0, [("e", "m", 1.0)]) == 1
        assert store.latest("e", "m") == 1.0

    def test_store_wide_toggle_reaches_existing_series(self):
        store = MetricStore(streaming=True)
        for tick in range(10):
            store.record("job", "rate", tick * 60.0, float(tick))
        before = store.series("job", "rate").average_over(300.0, 540.0)
        store.set_streaming(False)
        assert not store.series("job", "rate").streaming
        assert not store.series("job", "new_metric").streaming
        assert store.series("job", "rate").average_over(300.0, 540.0) == before
        store.set_streaming(True)
        assert store.series("job", "rate").streaming

    def test_indexes_follow_drop_entity(self):
        store = MetricStore()
        store.record_many(
            0.0, [("a", "cpu", 1.0), ("b", "cpu", 2.0), ("a", "mem", 3.0)]
        )
        assert store.entities_with("cpu") == ["a", "b"]
        store.drop_entity("a")
        assert store.entities_with("cpu") == ["b"]
        assert store.entities_with("mem") == []
        assert store.latest("a", "cpu") is None


class TestSketchErrorBound:
    #: Worst-case relative error is exactly alpha (a value landing on a
    #: bucket boundary); allow float-rounding headroom on the comparison.
    HEADROOM = 1.0 + 1e-9

    @staticmethod
    def assert_rank_adjacent(estimate, values, q, alpha):
        ordered = sorted(values)
        rank = (q / 100.0) * (len(ordered) - 1)
        neighbors = {
            ordered[math.floor(rank)], ordered[math.ceil(rank)]
        }
        ok = any(
            estimate == neighbor
            or abs(estimate - neighbor)
            <= alpha * abs(neighbor) * TestSketchErrorBound.HEADROOM
            for neighbor in neighbors
        )
        assert ok, (
            f"p{q} estimate {estimate!r} not within {alpha} of either "
            f"rank-adjacent value {sorted(neighbors)!r}"
        )

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e12, max_value=1e12,
                allow_nan=False, allow_subnormal=False,
            ),
            min_size=1, max_size=300,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_within_alpha_of_adjacent_order_statistic(
        self, values, q
    ):
        sketch = HistogramSketch(DEFAULT_ALPHA)
        for value in values:
            sketch.add(value)
        assert sketch.count == len(values)
        self.assert_rank_adjacent(
            sketch.percentile(q), values, q, DEFAULT_ALPHA
        )

    def test_remove_restores_exact_state(self):
        """Adds and removes are symmetric — the window-eviction contract."""
        sketch = HistogramSketch(0.01)
        kept = [1.0, 2.5, -3.0, 0.0, 1e6]
        evicted = [7.0, -0.25, 0.0, 123.456]
        for value in kept + evicted:
            sketch.add(value)
        for value in evicted:
            sketch.remove(value)
        reference = HistogramSketch(0.01)
        for value in kept:
            reference.add(value)
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert sketch.percentile(q) == reference.percentile(q)

    def test_merge_matches_single_pass_build(self):
        """Sharded sketches fold together without losing anything."""
        left, right, both = (HistogramSketch(0.01) for _ in range(3))
        a_values = [0.5, 2.0, -7.5, 0.0, 3e8]
        b_values = [1.5, -2.0, 0.0, 4e-6]
        for value in a_values:
            left.add(value)
            both.add(value)
        for value in b_values:
            right.add(value)
            both.add(value)
        left.merge(right)
        assert left.count == both.count
        for q in (0.0, 50.0, 100.0):
            assert left.percentile(q) == both.percentile(q)
        with pytest.raises(ValueError):
            left.merge(HistogramSketch(0.05))
        left.clear()
        assert left.count == 0

    def test_aggregate_percentile_sketch_path_honors_bound(self):
        """``percentile(..., tolerance=...)`` switches to the sketch only
        above SKETCH_MIN_VALUES and stays within the declared tolerance."""
        rng = random.Random(3)
        values = [rng.uniform(0.1, 10_000.0) for _ in range(500)]
        assert len(values) >= SKETCH_MIN_VALUES
        for q in (1.0, 50.0, 99.0):
            sketched = percentile(values, q, tolerance=0.01)
            self.assert_rank_adjacent(sketched, values, q, 0.01)
        small = values[: SKETCH_MIN_VALUES - 1]
        assert percentile(small, 50.0, tolerance=0.01) == percentile(
            small, 50.0
        )
