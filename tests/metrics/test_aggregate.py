"""Unit and property tests for aggregation helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import cdf_points, mean, percentile, stdev
from repro.metrics.aggregate import fraction_below

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def test_mean_basic():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_mean_empty_is_zero():
    assert mean([]) == 0.0


def test_stdev_basic():
    assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.0)


def test_stdev_singleton_is_zero():
    assert stdev([5.0]) == 0.0
    assert stdev([]) == 0.0


def test_stdev_constant_is_zero():
    assert stdev([3.0] * 10) == 0.0


def test_percentile_median():
    assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 50) == 3.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


def test_percentile_extremes():
    values = [5.0, 1.0, 3.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 5.0


def test_percentile_singleton():
    assert percentile([7.0], 95) == 7.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_rejected():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, pytest.approx(1 / 3)),
                      (2.0, pytest.approx(2 / 3)),
                      (3.0, pytest.approx(1.0))]


def test_cdf_points_empty():
    assert cdf_points([]) == []


def test_fraction_below():
    values = [0.5, 1.5, 2.5, 3.5]
    assert fraction_below(values, 2.0) == 0.5
    assert fraction_below([], 2.0) == 0.0


class TestProperties:
    @given(st.lists(floats, min_size=1, max_size=50))
    def test_percentile_between_min_and_max(self, values):
        p50 = percentile(values, 50)
        assert min(values) - 1e-9 <= p50 <= max(values) + 1e-9

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_percentiles_monotone_in_q(self, values):
        assert percentile(values, 5) <= percentile(values, 50) + 1e-9
        assert percentile(values, 50) <= percentile(values, 95) + 1e-9

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_mean_between_min_and_max(self, values):
        mu = mean(values)
        assert min(values) - 1e-6 <= mu <= max(values) + 1e-6

    @given(st.lists(floats, min_size=2, max_size=50))
    def test_stdev_non_negative(self, values):
        assert stdev(values) >= 0.0

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_cdf_reaches_one(self, values):
        points = cdf_points(values)
        assert points[-1][1] == pytest.approx(1.0)
        fractions = [fraction for __, fraction in points]
        assert fractions == sorted(fractions)

    @given(st.lists(floats, min_size=1, max_size=30))
    def test_percentile_matches_numpy(self, values):
        numpy = pytest.importorskip("numpy")
        for q in (0, 5, 25, 50, 75, 95, 100):
            ours = percentile(values, q)
            theirs = float(numpy.percentile(values, q))
            assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)
