"""Unit tests for TimeSeries."""

import pytest

from repro.metrics import TimeSeries


def test_starts_empty():
    series = TimeSeries()
    assert len(series) == 0
    assert series.latest() is None
    assert series.latest_time() is None


def test_record_and_latest():
    series = TimeSeries()
    series.record(1.0, 10.0)
    series.record(2.0, 20.0)
    assert series.latest() == 20.0
    assert series.latest_time() == 2.0


def test_out_of_order_rejected():
    series = TimeSeries()
    series.record(5.0, 1.0)
    with pytest.raises(ValueError):
        series.record(4.0, 1.0)


def test_same_time_allowed():
    series = TimeSeries()
    series.record(5.0, 1.0)
    series.record(5.0, 2.0)
    assert len(series) == 2


def test_window_inclusive():
    series = TimeSeries()
    for t in range(10):
        series.record(float(t), float(t * 10))
    window = series.window(3.0, 5.0)
    assert [t for t, __ in window] == [3.0, 4.0, 5.0]


def test_values_in():
    series = TimeSeries()
    for t in range(10):
        series.record(float(t), float(t))
    assert series.values_in(7.0, 9.0) == [7.0, 8.0, 9.0]


def test_average_over_trailing_window():
    series = TimeSeries()
    series.record(0.0, 100.0)
    series.record(50.0, 10.0)
    series.record(60.0, 20.0)
    assert series.average_over(15.0, now=60.0) == pytest.approx(15.0)


def test_average_over_empty_window_is_none():
    series = TimeSeries()
    series.record(0.0, 1.0)
    assert series.average_over(5.0, now=100.0) is None


def test_max_over():
    series = TimeSeries()
    series.record(0.0, 5.0)
    series.record(1.0, 9.0)
    series.record(2.0, 3.0)
    assert series.max_over(10.0, now=2.0) == 9.0
    assert series.max_over(0.5, now=100.0) is None


def test_retention_trims_old_samples():
    series = TimeSeries(retention=10.0)
    for t in range(30):
        series.record(float(t), float(t))
    times = [t for t, __ in series.all_points()]
    assert min(times) >= 29.0 - 10.0
    assert max(times) == 29.0


def test_no_retention_keeps_everything():
    series = TimeSeries(retention=None)
    for t in range(1000):
        series.record(float(t), 0.0)
    assert len(series) == 1000


def test_invalid_retention_rejected():
    with pytest.raises(ValueError):
        TimeSeries(retention=0.0)
