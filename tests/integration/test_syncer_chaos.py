"""Property-based chaos testing of the State Syncer's ACIDF guarantees.

Random sequences of config updates (from all three writer roles) interleave
with random actuator failures. Invariants checked after every round:

* the running config is always *some* previously-expected merged config —
  never a half-applied hybrid (atomicity);
* a job is quarantined only after the configured number of consecutive
  failures (fault-tolerance bookkeeping);
* once failures stop, every non-quarantined job converges to its expected
  config within a bounded number of rounds (durability/eventual delivery).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jobs import (
    ConfigLevel,
    JobService,
    JobSpec,
    JobStore,
    StateSyncer,
)
from repro.testing import ChaoticActuator
from repro.types import JobState

NUM_JOBS = 3


# One chaos step: (job_index, writer_level, task_count)
steps = st.lists(
    st.tuples(
        st.integers(0, NUM_JOBS - 1),
        st.sampled_from(
            [ConfigLevel.PROVISIONER, ConfigLevel.SCALER, ConfigLevel.ONCALL]
        ),
        st.integers(1, 12),
    ),
    min_size=1,
    max_size=12,
)
failures = st.lists(st.booleans(), min_size=0, max_size=60)


def canonical(config):
    return json.dumps(config, sort_keys=True)


@settings(max_examples=40, deadline=None)
@given(updates=steps, failure_plan=failures)
def test_acidf_under_chaos(updates, failure_plan):
    store = JobStore()
    service = JobService(store)
    for index in range(NUM_JOBS):
        service.provision(
            JobSpec(job_id=f"job-{index}", input_category="cat")
        )
    actuator = ChaoticActuator(failure_plan)
    syncer = StateSyncer(store, actuator, quarantine_after=3)

    expected_history = {
        job_id: {canonical({}), canonical(store.merged_expected(job_id))}
        for job_id in store.job_ids()
    }

    for job_index, level, task_count in updates:
        job_id = f"job-{job_index}"
        if store.state_of(job_id) != JobState.QUARANTINED:
            service.patch(job_id, level, {"task_count": task_count})
        expected_history[job_id].add(
            canonical(store.merged_expected(job_id))
        )
        syncer.sync_once()
        for jid in store.job_ids():
            running = canonical(store.read_running(jid).config)
            assert running in expected_history[jid], (
                "running config must be a previously-expected state, "
                "never a hybrid"
            )

    # Chaos ends; everything not quarantined converges in ≤ 2 rounds.
    actuator.failing = False
    syncer.sync_once()
    syncer.sync_once()
    for jid in store.job_ids():
        if store.state_of(jid) == JobState.QUARANTINED:
            assert syncer.failure_count(jid) >= 3 or True
            continue
        assert store.read_running(jid).config == store.merged_expected(jid)


@settings(max_examples=20, deadline=None)
@given(failure_plan=st.lists(st.booleans(), min_size=10, max_size=40))
def test_quarantine_only_after_consecutive_failures(failure_plan):
    store = JobStore()
    service = JobService(store)
    service.provision(JobSpec(job_id="job", input_category="cat"))
    actuator = ChaoticActuator(failure_plan)
    syncer = StateSyncer(store, actuator, quarantine_after=3)

    consecutive = 0
    for __ in range(15):
        if store.state_of("job") == JobState.QUARANTINED:
            break
        report = syncer.sync_once()
        if "job" in report.failed:
            consecutive += 1
        elif report.total_synced or not report.failed:
            consecutive = 0
        if "job" in report.quarantined:
            assert consecutive >= 3, (
                "quarantine requires three consecutive failures"
            )
