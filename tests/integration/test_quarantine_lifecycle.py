"""Property-based quarantine lifecycle under randomized store outages.

A poisoned oncall config drives a job toward quarantine while the Job
Store flaps through randomized 30-second availability windows. At every
step the safety invariants (no duplicate tasks, no orphans) must hold;
skipped syncer rounds during outages must not count toward quarantine;
and after the poison is fixed and the quarantine released, the platform
must fully converge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JobSpec, PlatformConfig, Turbine
from repro.chaos import ConvergenceChecker
from repro.jobs import ConfigLevel
from repro.types import JobState

#: Store availability per 30 s chunk (True = outage window).
outage_plans = st.lists(st.booleans(), min_size=4, max_size=20)


def quarantine_platform(seed):
    platform = Turbine.create(
        num_hosts=2, seed=seed,
        config=PlatformConfig(num_shards=16, containers_per_host=2),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2)
    )
    platform.run_for(minutes=5)
    return platform


@settings(max_examples=15, deadline=None)
@given(outage_plan=outage_plans, seed=st.integers(0, 3))
def test_quarantine_lifecycle_under_store_outages(outage_plan, seed):
    platform = quarantine_platform(seed)
    checker = ConvergenceChecker(platform)
    checker.assert_safety()

    # Poison the oncall level: spec generation fails inside every sync
    # plan, so the job marches toward quarantine — but only on rounds
    # that actually run.
    platform.job_service.patch("job", ConfigLevel.ONCALL, {"task_count": -1})

    rounds_before = len(platform.syncer.rounds)
    for store_down in outage_plan:
        if store_down:
            platform.job_store.fail()
        else:
            platform.job_store.recover()
        platform.run_for(seconds=30.0)
        checker.assert_safety()

    new_rounds = platform.syncer.rounds[rounds_before:]
    if any(outage_plan):
        assert any(r.skipped for r in new_rounds), (
            "outage windows must skip rounds, not crash the syncer"
        )
    # Skipped rounds never count as plan failures.
    assert len([r for r in new_rounds if r.failed]) + len(
        [r for r in new_rounds if r.skipped]
    ) <= len(new_rounds)

    # Store stays up: three real failed rounds quarantine the job.
    platform.job_store.recover()
    platform.run_for(minutes=3)
    checker.assert_safety()
    assert platform.job_store.state_of("job") == JobState.QUARANTINED
    assert any(job_id == "job" for __, job_id, __r in platform.syncer.alerts)
    # Atomicity at the cluster level: the job is either still on its
    # last good config or fully stopped awaiting resync — never a
    # half-applied hybrid (and never duplicated, per assert_safety).
    assert len(platform.tasks_of_job("job")) in (0, 2)

    # Oncall fixes the config and releases the quarantine: the platform
    # must resync and fully converge.
    platform.job_service.patch("job", ConfigLevel.ONCALL, {"task_count": 3})
    platform.syncer.release_quarantine("job")
    platform.run_for(minutes=4)
    report = checker.check()
    assert report.converged, report.violations()
    assert len(platform.tasks_of_job("job")) == 3


@settings(max_examples=10, deadline=None)
@given(outage_plan=outage_plans)
def test_no_quarantine_without_real_failures(outage_plan):
    """Store outages alone (healthy configs) must never quarantine."""
    platform = quarantine_platform(seed=1)
    checker = ConvergenceChecker(platform)
    for store_down in outage_plan:
        if store_down:
            platform.job_store.fail()
        else:
            platform.job_store.recover()
        platform.run_for(seconds=30.0)
        checker.assert_safety()
    platform.job_store.recover()
    platform.run_for(minutes=2)
    assert platform.job_store.state_of("job") == JobState.RUNNING
    assert checker.check().converged
