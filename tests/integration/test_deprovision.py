"""Job teardown: deprovision must leave no task, spec, or state behind."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.workloads import TrafficDriver


def platform_with_jobs():
    platform = Turbine.create(
        num_hosts=2, seed=91,
        config=PlatformConfig(num_shards=16, containers_per_host=2),
    )
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for name in ("keep", "drop"):
        platform.provision(
            JobSpec(job_id=name, input_category=f"cat-{name}", task_count=4)
        )
        driver.add_source(f"cat-{name}", lambda t: 2.0)
    driver.start()
    platform.run_for(minutes=5)
    return platform


def test_deprovision_removes_everything():
    platform = platform_with_jobs()
    assert len(platform.tasks_of_job("drop")) == 4
    platform.deprovision("drop")
    assert platform.tasks_of_job("drop") == []
    assert platform.task_service.specs_of("drop") == []
    assert "drop" not in platform.job_service.job_ids()
    assert platform.scribe.checkpoints.partitions_of("drop") == []
    assert platform.metrics.latest("drop", "time_lagged") is None
    # The surviving job is untouched.
    platform.run_for(minutes=5)
    assert len(platform.tasks_of_job("keep")) == 4


def test_deprovisioned_job_never_resurrects():
    platform = platform_with_jobs()
    platform.deprovision("drop")
    platform.run_for(minutes=10)  # refreshes, rebalances, syncs...
    assert platform.tasks_of_job("drop") == []


def test_gc_sweeps_orphaned_specs():
    """If deprovisioning dies between the store delete and the task stop,
    the State Syncer's next round converges the cluster anyway."""
    platform = platform_with_jobs()
    # The "crashed half-way" deprovision: store entry gone, tasks still up.
    platform.job_service.deprovision("drop")
    assert platform.tasks_of_job("drop"), "precondition: tasks orphaned"
    platform.run_for(minutes=2)  # ≥ one syncer round
    assert platform.tasks_of_job("drop") == []
    assert platform.task_service.specs_of("drop") == []
