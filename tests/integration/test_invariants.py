"""Property-style invariant tests under randomized fault injection.

The two Task Management invariants from section IV ("Schedule tasks without
duplication ... There should also be no task loss") are checked continuously
while hosts crash and recover at random.
"""

import pytest

from repro import JobSpec, PlatformConfig, Turbine


def chaos_platform(seed):
    config = PlatformConfig(num_shards=32, containers_per_host=2)
    platform = Turbine.create(num_hosts=4, seed=seed, config=config)
    platform.start()
    for index in range(4):
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=4),
        )
    platform.run_for(minutes=5)
    return platform


def assert_no_duplicates(platform):
    tasks = platform.running_tasks()
    assert len(tasks) == len(set(tasks)), f"duplicate tasks: {tasks}"


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_no_duplicate_tasks_under_random_failures(seed):
    platform = chaos_platform(seed)
    platform.failures.enable_random_failures(
        mean_time_between_failures=600.0, mean_time_to_recover=300.0,
    )
    for __ in range(24):  # check every 5 minutes over 2 hours
        platform.run_for(minutes=5)
        assert_no_duplicates(platform)
        # Re-populate recovered hosts the way the platform normally would.
        for host in platform.cluster.live_hosts():
            if not host.containers:
                for __ in range(platform.config.containers_per_host):
                    container = platform.cluster.allocate_container(
                        host_id=host.host_id
                    )
                    platform._spawn_manager(container)


@pytest.mark.parametrize("seed", [11, 12])
def test_all_tasks_recovered_after_chaos_ends(seed):
    platform = chaos_platform(seed)
    # A burst of failures, then calm.
    from repro.cluster import FailurePlan

    platform.failures.schedule_all([
        FailurePlan("host-0", platform.now + 60.0, platform.now + 400.0),
        FailurePlan("host-2", platform.now + 120.0, platform.now + 500.0),
    ])
    platform.run_for(minutes=9)
    for host_id in ("host-0", "host-2"):
        host = platform.cluster.hosts[host_id]
        if host.alive and not host.containers:
            for __ in range(platform.config.containers_per_host):
                container = platform.cluster.allocate_container(host_id=host_id)
                platform._spawn_manager(container)
    platform.run_for(minutes=30)
    # No task loss: every provisioned task is running exactly once.
    for index in range(4):
        assert len(platform.tasks_of_job(f"job-{index}")) == 4
    assert_no_duplicates(platform)


def test_partition_plus_failover_race_never_duplicates():
    """The nastiest interleaving: a partitioned manager races the Shard
    Manager's fail-over. The 40 s < 60 s design keeps it safe for any
    partition length."""
    for partition_seconds in (10.0, 39.0, 45.0, 59.0, 90.0, 300.0):
        platform = chaos_platform(seed=int(partition_seconds))
        victim = next(
            manager for manager in platform.task_managers.values()
            if manager.running_task_ids()
        )
        victim.partitioned = True
        end = platform.now + partition_seconds
        while platform.now < end:
            platform.run_for(seconds=min(10.0, end - platform.now))
            assert_no_duplicates(platform)
        victim.partitioned = False
        platform.run_for(minutes=5)
        assert_no_duplicates(platform)
        total = sum(
            len(platform.tasks_of_job(f"job-{index}")) for index in range(4)
        )
        assert total == 16, f"all tasks back after {partition_seconds}s split"
