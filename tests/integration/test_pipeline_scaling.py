"""Capstone: the Auto Scaler keeps a whole provisioned pipeline in SLO.

A two-stage pipeline (filter → shuffle → aggregate) faces a 4x traffic
ramp. Stage 1's input is stage 0's *output* via the intermediate Scribe
category, so the scaler must track each stage's own observed traffic —
there is no global coordinator, exactly as in the paper's architecture.
"""

import pytest

from repro import PlatformConfig, Turbine
from repro.provision import (
    Aggregate,
    Field,
    Filter,
    ProvisionService,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
)
from repro.scaler import AutoScalerConfig
from repro.workloads import TrafficDriver

EVENTS = Schema.of(
    Field("key", "int"), Field("valid", "bool"), Field("payload", "string"),
)


def test_pipeline_scales_stage_by_stage():
    platform = Turbine.create(
        num_hosts=4, seed=73,
        config=PlatformConfig(num_shards=64, containers_per_host=2,
                              step_interval=30.0),
    )
    platform.attach_scaler(AutoScalerConfig(interval=120.0))
    platform.start()

    query = Query(
        "ramp",
        Sink(
            Aggregate(
                Shuffle(
                    Filter(Source("events", EVENTS, rate_mb=4.0), "valid",
                           selectivity=0.5),
                    "key",
                ),
                group_by="key", aggregates=("count",),
                key_cardinality=100_000,
            ),
            "ramp_out",
        ),
    )
    pipeline = ProvisionService().provision(query, platform)
    stage0, stage1 = (spec.job_id for spec in pipeline.job_specs)

    # Ramp: 4 MB/s for 30 min, then 16 MB/s for 90 min.
    driver = TrafficDriver(platform.engine, platform.scribe, tick=30.0)
    ramp_at = platform.now + 1800.0
    driver.add_source("events", lambda t: 4.0 if t < ramp_at else 16.0)
    driver.start()
    platform.run_for(hours=2)

    for job_id in (stage0, stage1):
        lag = platform.metrics.latest(job_id, "time_lagged")
        assert lag is not None and lag < 90.0, f"{job_id} out of SLO"
    # Stage 0 had to grow (16 MB/s vs its initial ~3-task sizing).
    stage0_capacity = (
        platform.job_service.expected_config(stage0)["task_count"]
        * platform.job_service.expected_config(stage0).get(
            "threads_per_task", 1
        ) * 2.0
    )
    assert stage0_capacity >= 16.0
    # Stage 1 sees only the filtered half and sized itself accordingly —
    # its capacity is real but much smaller than stage 0's.
    stage1_capacity = (
        platform.job_service.expected_config(stage1)["task_count"]
        * platform.job_service.expected_config(stage1).get(
            "threads_per_task", 1
        ) * 2.0
    )
    assert stage1_capacity >= 8.0
    assert stage1_capacity < stage0_capacity
