"""Two-cluster host transfer during a regional event (section V-F).

"[The Capacity Manager] is authorized to temporarily transfer resources
between different clusters for better global resource utilization. This is
particularly useful during datacenter-wide events such as datacenter
outages or disaster simulation drills."

Scenario: cluster B absorbs redirected traffic and comes under capacity
pressure; cluster A (quiet) lends hosts; B adds them, the pressure clears,
and B's scaler resumes scaling unprivileged jobs.
"""

import pytest

from repro import JobSpec, PlatformConfig, ResourceVector, Turbine
from repro.scaler.capacity import CapacityConfig
from repro.types import Priority
from repro.workloads import TrafficDriver


def build_cluster(num_hosts, seed):
    platform = Turbine.create(
        num_hosts=num_hosts, seed=seed,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.attach_scaler()
    platform.attach_capacity_manager(
        CapacityConfig(interval=120.0, pressure_threshold=0.30,
                       instability_threshold=0.9)
    )
    platform.start()
    return platform


def test_lent_hosts_relieve_pressure():
    lender = build_cluster(num_hosts=4, seed=51)
    borrower = build_cluster(num_hosts=2, seed=52)

    # Load the borrower close to its capacity threshold.
    driver = TrafficDriver(borrower.engine, borrower.scribe, tick=60.0)
    for index in range(4):
        borrower.provision(
            JobSpec(
                job_id=f"job-{index}", input_category=f"cat-{index}",
                task_count=6, priority=Priority.LOW,
                resources_per_task=ResourceVector(cpu=2.0, memory_gb=4.0),
            )
        )
        driver.add_source(f"cat-{index}", lambda t: 4.0)
    driver.start()
    borrower.run_for(minutes=6)
    assert borrower.capacity_manager.under_pressure
    assert borrower.scaler.priority_floor == Priority.HIGH

    # The global capacity operator moves two quiet hosts across clusters.
    lent = lender.capacity_manager.lend_hosts(2)
    assert len(lent) == 2
    for host_id in lent:
        borrower.add_host(f"borrowed-{host_id}")
    # Both engines advance (they are independent simulations).
    borrower.run_for(minutes=6)
    lender.run_for(minutes=6)

    assert not borrower.capacity_manager.under_pressure, (
        "doubling the host pool must clear the pressure"
    )
    assert borrower.scaler.priority_floor == Priority.LOW
    assert len(lender.cluster.live_hosts()) == 2

    # The borrowed hosts actually carry load after the next rebalance.
    borrower.run_for(minutes=35)
    borrowed_managers = [
        manager for manager in borrower.task_managers.values()
        if manager.container.host_id.startswith("borrowed-")
    ]
    assert borrowed_managers
    assert any(manager.assigned_shards for manager in borrowed_managers)
