"""Whole-platform determinism: same seed ⇒ identical runs, bit for bit.

The experiments' reproducibility rests on this property, so it gets its
own integration test: two independently constructed platforms with the
same seed must produce identical metric streams, placements, and scaler
decisions over a busy hour that includes failures and scaling.
"""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.cluster import FailurePlan
from repro.scaler import AutoScalerConfig
from repro.workloads import DiurnalPattern, TrafficDriver


def run_busy_hour(
    seed, placement_cache=True, observe=False, metrics_streaming=True,
    replication=False, durable_checkpoints=False, hot_standby=False,
    flag_hot_standby=None, slow_node_detection=False, failures=True,
):
    # The JobSpec opt-in flag normally follows the plane toggle, but the
    # standby transparency test sets it on BOTH arms (it is inert without
    # the plane) so the provisioner's config-write trace matches and only
    # the plane itself differs across the pair.
    if flag_hot_standby is None:
        flag_hot_standby = hot_standby
    platform = Turbine.create(
        num_hosts=4, seed=seed,
        config=PlatformConfig(
            num_shards=32, containers_per_host=2,
            metrics_streaming=metrics_streaming,
        ),
    )
    platform.shard_manager.placement_cache_enabled = placement_cache
    if observe:
        platform.enable_tracing()
        platform.enable_instrumentation()
    platform.attach_scaler(AutoScalerConfig(interval=120.0))
    platform.attach_slo()
    if replication:
        platform.attach_replication()
    if durable_checkpoints:
        platform.attach_checkpoints()
    if hot_standby:
        platform.attach_standby()
    if slow_node_detection:
        platform.attach_slow_node_detector()
    platform.start()
    driver = TrafficDriver(
        platform.engine, platform.scribe, tick=60.0,
        metrics=platform.metrics,
    )
    for index in range(4):
        pattern = DiurnalPattern(
            3.0 + index, amplitude=0.3,
            rng=platform.engine.rng.fork(f"wl-{index}"),
        )
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=2, rate_per_thread_mb=2.0,
                    hot_standby=flag_hot_standby),
        )
        driver.add_source(f"cat-{index}", pattern)
    driver.start()
    if failures:
        platform.failures.schedule(
            FailurePlan("host-1", fail_at=1200.0, recover_at=2400.0)
        )
    platform.run_for(hours=1)

    fingerprint = {
        "assignment": dict(platform.shard_manager.assignment),
        "tasks": platform.running_tasks(),
        "lags": {
            f"job-{i}": platform.metrics.series(
                f"job-{i}", "time_lagged"
            ).all_points()
            for i in range(4)
        },
        "actions": [
            (a.time, a.job_id, a.action.value, a.task_count, a.threads)
            for a in platform.scaler.actions
        ],
        "failovers": [
            (e.time, e.container_id, e.shards_moved)
            for e in platform.shard_manager.failover_events
        ],
        "checkpoint_total": sum(
            platform.scribe.checkpoints.get(f"job-{i}", p.partition_id)
            for i in range(4)
            for p in platform.scribe.get_category(f"cat-{i}").partitions
        ),
    }
    if observe:
        from repro.ops.timeline import IncidentTimeline

        exports = {
            "trace": platform.tracer.to_jsonl(),
            "telemetry": platform.telemetry.to_jsonl(deterministic=True),
            "timeline": IncidentTimeline(platform).render(),
            "slo": platform.slo.to_json(platform.now),
        }
        return fingerprint, exports
    return fingerprint


def test_same_seed_identical_runs():
    assert run_busy_hour(seed=101) == run_busy_hour(seed=101)


def test_different_seed_differs():
    a = run_busy_hour(seed=101)
    b = run_busy_hour(seed=202)
    assert a != b, "different seeds must explore different trajectories"


class TestChaosScenarioDeterminism:
    """Golden chaos replays: same scenario + same seed ⇒ byte-identical
    incident timelines and deterministic telemetry exports.

    This is the property the CI determinism sweep enforces across seeds;
    resilience counters (``resilience.*``), chaos bookkeeping
    (``chaos.*``), and skipped-round counts are all deterministic
    instruments, so they must agree bit for bit too.
    """

    def test_same_seed_byte_identical_chaos_runs(self):
        from repro.chaos import run_scenario

        first = run_scenario("job-store-outage", seed=7)
        second = run_scenario("job-store-outage", seed=7)
        assert first.mttr == second.mttr
        assert first.timeline_text == second.timeline_text
        assert first.telemetry_jsonl == second.telemetry_jsonl
        assert first.timeline_text, "timeline export must not be empty"
        assert "resilience." in first.telemetry_jsonl

    def test_slo_report_byte_identical_and_populated(self):
        """The acceptance bar: ``repro chaos --seed N`` exports a
        byte-identical SLO report across repeated same-seed runs, and the
        report actually accounts budgets (not vacuously empty)."""
        import json

        from repro.chaos import run_scenario

        first = run_scenario("metric-gap", seed=5)
        second = run_scenario("metric-gap", seed=5)
        assert first.slo_report_json == second.slo_report_json
        assert first.budget_burned == second.budget_burned
        report = json.loads(first.slo_report_json)
        assert report["slos"], "default SLOs must be tracked during drills"
        assert report["evaluations"] > 0
        # SLO-derived telemetry is part of the deterministic export too.
        assert "slo.evals" in first.telemetry_jsonl
        assert "sli.fleet.jobs_total" in first.telemetry_jsonl

    def test_syncer_crash_replay_identical(self):
        from repro.chaos import run_scenario

        first = run_scenario("syncer-crash", seed=11)
        second = run_scenario("syncer-crash", seed=11)
        assert first.timeline_text == second.timeline_text
        assert first.telemetry_jsonl == second.telemetry_jsonl

    def test_different_seed_differs_somewhere(self):
        from repro.chaos import run_scenario

        a = run_scenario("job-store-outage", seed=7)
        b = run_scenario("job-store-outage", seed=8)
        assert (
            a.timeline_text != b.timeline_text
            or a.telemetry_jsonl != b.telemetry_jsonl
        ), "different seeds must explore different trajectories"


class TestPlacementCacheTransparency:
    """The decision cache must be invisible to every observable output.

    Golden same-seed runs with the cache on and off must agree not just
    on the coarse fingerprint but on the byte-exact causal trace and the
    deterministic telemetry export. Mechanism metrics (``cache.*``) and
    wall-clock instruments (``*_ms``) legitimately differ between the two
    runs, which is exactly why the deterministic export excludes them —
    see :func:`repro.obs.telemetry.is_deterministic_instrument`.
    """

    def test_same_seed_byte_identical_with_cache_on_and_off(self):
        fp_on, exports_on = run_busy_hour(
            seed=101, placement_cache=True, observe=True
        )
        fp_off, exports_off = run_busy_hour(
            seed=101, placement_cache=False, observe=True
        )
        assert fp_on == fp_off
        assert exports_on["trace"] == exports_off["trace"]
        assert exports_on["telemetry"] == exports_off["telemetry"]

    def test_cache_actually_engaged_in_golden_run(self):
        """Guard against the transparency test passing vacuously."""
        platform = Turbine.create(
            num_hosts=2, seed=7,
            config=PlatformConfig(num_shards=8, containers_per_host=2),
        )
        platform.start()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2)
        )
        platform.run_for(hours=0.5)
        cache = platform.shard_manager._placement_cache
        assert cache.hits + cache.repairs > 0, (
            "periodic rebalance rounds should be served by the cache"
        )


class TestStreamingMetricsTransparency:
    """The streaming metrics engine must be invisible to every decision.

    The incremental window aggregates, rollup buckets, and histogram
    sketches are a pure read-path optimization: golden same-seed runs with
    streaming on and off must agree on the coarse fingerprint, the
    byte-exact causal trace, and the deterministic telemetry export.
    Engine self-observation (``metrics.*``) and wall-clock instruments
    (``*_ms``) legitimately differ between the two runs, which is exactly
    why the deterministic export excludes them — see
    :func:`repro.obs.telemetry.is_deterministic_instrument`.
    """

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_same_seed_byte_identical_streaming_on_and_off(self, seed):
        fp_on, exports_on = run_busy_hour(
            seed=seed, metrics_streaming=True, observe=True
        )
        fp_off, exports_off = run_busy_hour(
            seed=seed, metrics_streaming=False, observe=True
        )
        assert fp_on == fp_off
        assert exports_on["trace"] == exports_off["trace"]
        assert exports_on["telemetry"] == exports_off["telemetry"]

    def test_streaming_path_actually_engaged_in_golden_run(self):
        """Guard against the transparency test passing vacuously."""
        platform = Turbine.create(
            num_hosts=4, seed=101,
            config=PlatformConfig(
                num_shards=32, containers_per_host=2,
                metrics_streaming=True,
            ),
        )
        platform.attach_scaler(AutoScalerConfig(interval=120.0))
        platform.start()
        driver = TrafficDriver(
            platform.engine, platform.scribe, tick=60.0,
            metrics=platform.metrics,
        )
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    rate_per_thread_mb=2.0)
        )
        driver.add_source(
            "cat", DiurnalPattern(3.0, amplitude=0.3,
                                  rng=platform.engine.rng.fork("wl")),
        )
        driver.start()
        platform.run_for(hours=1)
        stats = platform.metrics.read_stats()
        assert stats["window_fast"] > 0, (
            "scaler window reads should be served by incremental aggregates"
        )
        assert stats["batches_ingested"] > 0, (
            "driver/stats collection should land coalesced batches"
        )

class TestReplicationTransparency:
    """Job Store replication must be invisible until a fault needs it.

    A replicated platform tails every mutation into the Scribe command
    log and runs lease/catch-up timers, but none of that may perturb the
    simulation: fault-free golden same-seed runs with replication on and
    off must agree on the coarse fingerprint, the byte-exact causal
    trace, the rendered incident timeline, and the SLO report — the
    ``--timeline-out``/``--slo-out`` exports of ``repro chaos``. The
    telemetry export is deliberately NOT compared across the pair:
    ``repl.*`` counters exist only on the replicated arm (and are
    themselves deterministic, which the chaos determinism sweep checks).
    """

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_same_seed_byte_identical_replication_on_and_off(self, seed):
        fp_on, exports_on = run_busy_hour(
            seed=seed, replication=True, observe=True
        )
        fp_off, exports_off = run_busy_hour(
            seed=seed, replication=False, observe=True
        )
        assert fp_on == fp_off
        assert exports_on["trace"] == exports_off["trace"]
        assert exports_on["timeline"] == exports_off["timeline"]
        assert exports_on["slo"] == exports_off["slo"]

    def test_replication_actually_engaged_in_golden_run(self):
        """Guard against the transparency test passing vacuously."""
        platform = Turbine.create(
            num_hosts=4, seed=101,
            config=PlatformConfig(num_shards=32, containers_per_host=2),
        )
        group = platform.attach_replication()
        platform.start()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2)
        )
        platform.run_for(hours=0.5)
        assert group.log.head_index > 0, "mutations should reach the log"
        assert group.in_sync, "followers should have caught up"
        assert list(group.events) == [], (
            "fault-free runs must record no replication events"
        )


class TestResiliencyTransparency:
    """Data-plane resiliency must be invisible until a fault needs it.

    The checkpoint plane, the hot-standby plane, and the slow-node
    detector each add timers and Scribe traffic, but none may perturb
    the simulation they protect: golden same-seed runs with the feature
    on and off must agree on the coarse fingerprint, the byte-exact
    causal trace, the rendered incident timeline, and the SLO report.

    Two deliberate asymmetries:

    * The checkpoint pair is NOT compared on telemetry — ``ckpt.appends``
      exists only on the on arm (the replication precedent). The
      slow-node pair IS, modulo engine self-diagnostics that count the
      detector's own timer: the detector only writes ``slownode.*``
      counters when it drains, and a healthy fleet gives it nothing to
      drain.
    * The standby pair runs without the host-1 failure plan. A host
      failure is exactly when standbys are *supposed* to change the
      outcome (promotion beats the 40 s reboot clock), so transparency
      is only claimed fault-free; the engaged path is covered by the
      ``standby-takeover`` chaos scenario tests.
    """

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_checkpoints_on_and_off_byte_identical(self, seed):
        fp_on, exports_on = run_busy_hour(
            seed=seed, durable_checkpoints=True, observe=True
        )
        fp_off, exports_off = run_busy_hour(seed=seed, observe=True)
        assert fp_on == fp_off
        assert exports_on["trace"] == exports_off["trace"]
        assert exports_on["timeline"] == exports_off["timeline"]
        assert exports_on["slo"] == exports_off["slo"]

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_standby_on_and_off_byte_identical_fault_free(self, seed):
        fp_on, exports_on = run_busy_hour(
            seed=seed, hot_standby=True, failures=False, observe=True
        )
        # The off arm still flags the jobs: the ``hot_standby`` config key
        # is job data and lands in the provisioner trace either way; with
        # no plane attached it is inert, so the pair isolates the plane.
        fp_off, exports_off = run_busy_hour(
            seed=seed, failures=False, flag_hot_standby=True, observe=True
        )
        assert fp_on == fp_off
        assert exports_on["trace"] == exports_off["trace"]
        assert exports_on["timeline"] == exports_off["timeline"]
        assert exports_on["slo"] == exports_off["slo"]

    #: Engine self-diagnostics that definitionally differ when any extra
    #: timer exists: the detector's own fire counter, and the event/queue
    #: meters that count every scheduled event including the timer's.
    _ENGINE_DIAGNOSTICS = (
        '"name": "engine.events"',
        '"name": "engine.queue_depth"',
        '"name": "timer.slow-node-detector.fires"',
    )

    @classmethod
    def _without_engine_diagnostics(cls, telemetry):
        return "\n".join(
            line for line in telemetry.splitlines()
            if not any(marker in line for marker in cls._ENGINE_DIAGNOSTICS)
        )

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_slow_node_detector_on_and_off_byte_identical(self, seed):
        fp_on, exports_on = run_busy_hour(
            seed=seed, slow_node_detection=True, observe=True
        )
        fp_off, exports_off = run_busy_hour(seed=seed, observe=True)
        assert fp_on == fp_off
        assert exports_on["trace"] == exports_off["trace"]
        assert exports_on["timeline"] == exports_off["timeline"]
        assert exports_on["slo"] == exports_off["slo"]
        assert self._without_engine_diagnostics(
            exports_on["telemetry"]
        ) == self._without_engine_diagnostics(exports_off["telemetry"])

    def test_checkpoints_actually_engaged_in_golden_run(self):
        """Guard against the transparency test passing vacuously."""
        platform = Turbine.create(
            num_hosts=4, seed=101,
            config=PlatformConfig(num_shards=32, containers_per_host=2),
        )
        plane = platform.attach_checkpoints()
        platform.start()
        driver = TrafficDriver(
            platform.engine, platform.scribe, tick=60.0,
            metrics=platform.metrics,
        )
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2)
        )
        driver.add_source(
            "cat", DiurnalPattern(3.0, amplitude=0.3,
                                  rng=platform.engine.rng.fork("wl")),
        )
        driver.start()
        platform.run_for(hours=0.5)
        assert plane.appends > 0, "snapshots should reach the per-job log"
        assert plane.restores == 0 and plane.fallbacks == 0
        assert list(plane.events) == [], (
            "fault-free runs must record no checkpoint events"
        )

    def test_standbys_actually_placed_and_promote_on_failure(self):
        """Guard against the transparency test passing vacuously: opted-in
        jobs get passive replicas, and killing a primary's host promotes
        one instead of waiting out the reboot clock."""
        platform = Turbine.create(
            num_hosts=4, seed=101,
            config=PlatformConfig(num_shards=32, containers_per_host=2),
        )
        standby = platform.attach_standby()
        platform.start()
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=2,
                    hot_standby=True)
        )
        platform.run_for(hours=0.1)
        assert standby.placements, "opted-in jobs should have replicas"
        assert standby.reserved_memory_gb() > 0.0
        assert list(standby.events) == [], (
            "fault-free runs must record no standby events"
        )
        # Kill the host of the first placed primary; its standby lives
        # elsewhere (anti-affinity) and must take over.
        primary_host = next(
            manager.container.host_id
            for cid in sorted(platform.task_managers)
            for manager in [platform.task_managers[cid]]
            if manager.tasks
        )
        platform.failures.fail_now(primary_host, label="test")
        platform.run_for(hours=0.1)
        assert standby.promotions, "host loss should promote a standby"
        assert any(
            event.kind == "standby-promote" for event in standby.events
        )

    def test_slow_node_detector_observes_but_stays_quiet(self):
        """Guard against the transparency test passing vacuously: the
        detector samples real task rates yet drains nothing healthy."""
        platform = Turbine.create(
            num_hosts=4, seed=101,
            config=PlatformConfig(num_shards=32, containers_per_host=2),
        )
        detector = platform.attach_slow_node_detector()
        platform.start()
        driver = TrafficDriver(
            platform.engine, platform.scribe, tick=60.0,
            metrics=platform.metrics,
        )
        platform.provision(
            JobSpec(job_id="job", input_category="cat", task_count=4)
        )
        driver.add_source(
            "cat", DiurnalPattern(3.0, amplitude=0.3,
                                  rng=platform.engine.rng.fork("wl")),
        )
        driver.start()
        platform.run_for(hours=0.5)
        assert detector._last_totals, "detector should be sampling rates"
        assert detector.drains == 0
        assert list(detector.events) == []


class TestParallelSubstrateTransparency:
    """The partition count must be invisible to every merged export.

    Golden same-seed fleets run at 1 partition (the single event loop)
    and at 4 partitions in worker processes must agree byte-for-byte on
    the run fingerprint, the control-plane timeline, the SLO report, and
    the deterministic telemetry export. Only wall-clock and the
    ``used_processes`` diagnostic may differ — nothing partition-scoped
    is allowed to reach an export.
    """

    @staticmethod
    def _fleet(seed):
        from repro.sim.parallel import standard_fleet

        return standard_fleet(
            seed=seed, total_tasks=400, num_jobs=4, num_shards=32,
            duration=4 * 3600.0,
        )

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_same_seed_byte_identical_at_1_and_4_partitions(self, seed):
        from repro.sim.parallel import run_fleet

        single = run_fleet(self._fleet(seed), partitions=1)
        sharded = run_fleet(
            self._fleet(seed), partitions=4, use_processes=True
        )
        assert sharded.fingerprint_json == single.fingerprint_json
        assert sharded.timeline_text == single.timeline_text
        assert sharded.slo_json == single.slo_json
        assert sharded.telemetry_jsonl == single.telemetry_jsonl

    def test_worker_processes_actually_engaged_in_golden_run(self):
        """Guard against the transparency test passing vacuously."""
        from repro.sim.parallel import run_fleet

        result = run_fleet(
            self._fleet(101), partitions=4, use_processes=True
        )
        assert result.partitions == 4
        assert result.used_processes, (
            "worker processes should start on this platform"
        )
        assert result.rounds == 4

    def test_platform_toggle_routes_through_config(self):
        """``PlatformConfig.parallel_partitions`` drives the substrate."""
        single = Turbine.create(
            num_hosts=2, seed=11,
            config=PlatformConfig(num_shards=16, containers_per_host=2),
        )
        sharded = Turbine.create(
            num_hosts=2, seed=11,
            config=PlatformConfig(
                num_shards=16, containers_per_host=2,
                parallel_partitions=4,
            ),
        )
        for platform in (single, sharded):
            platform.start()
            platform.provision(
                JobSpec(job_id="job", input_category="cat", task_count=8)
            )
        res_single = single.parallel_substrate()
        res_sharded = sharded.parallel_substrate()
        assert res_single.partitions == 1
        assert res_sharded.partitions == 4
        assert res_sharded.fingerprint_json == res_single.fingerprint_json
        assert res_sharded.timeline_text == res_single.timeline_text


class TestDataPlaneTransparency:
    """The platform data plane's partition count must be invisible.

    Golden same-seed chaos drills run with the full ``Turbine`` platform's
    per-round task stepping on 1 partition slice and on 4 must agree
    byte-for-byte on all five exports — the platform fingerprint, the
    incident timeline, the SLO report, the causal trace, and the
    deterministic telemetry stream. Faults are part of the contract: the
    drill injects checkpoint loss and host failure mid-run, so the
    comparison exercises the dirty-job reship path and the contended
    (lazy) slot path, not just steady state.

    Width-dependent facts (wall clock, ``used_processes``) stay out of
    the exports; the plan-skew gauge is emitted at a fixed reference
    width precisely so it lands inside the byte-identical set.
    """

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_chaos_drill_byte_identical_at_1_and_4_partitions(self, seed):
        from repro.chaos import run_scenario

        single = run_scenario(
            "checkpoint-restore-vs-cold-restart", seed=seed,
            data_plane_partitions=1,
        )
        sharded = run_scenario(
            "checkpoint-restore-vs-cold-restart", seed=seed,
            data_plane_partitions=4,
        )
        assert sharded.fingerprint_json == single.fingerprint_json
        assert sharded.timeline_text == single.timeline_text
        assert sharded.slo_report_json == single.slo_report_json
        assert sharded.trace_jsonl == single.trace_jsonl
        assert sharded.telemetry_jsonl == single.telemetry_jsonl
        assert single.fingerprint_json, "fingerprint must not be empty"
        assert "dataplane.ticks" in single.telemetry_jsonl
        assert "dataplane.plan.skew" in single.telemetry_jsonl

    def test_data_plane_matches_legacy_serial_path(self):
        """Attaching the plane at width 1 reproduces the serial stepper."""
        from repro.chaos import run_scenario

        legacy = run_scenario("standby-takeover", seed=7)
        planed = run_scenario(
            "standby-takeover", seed=7, data_plane_partitions=1
        )
        assert planed.timeline_text == legacy.timeline_text
        assert planed.slo_report_json == legacy.slo_report_json

    def test_worker_processes_byte_identical_too(self):
        from repro.chaos import run_scenario

        inline = run_scenario(
            "standby-takeover", seed=7, data_plane_partitions=4,
        )
        forked = run_scenario(
            "standby-takeover", seed=7, data_plane_partitions=4,
            data_plane_processes=True,
        )
        assert forked.fingerprint_json == inline.fingerprint_json
        assert forked.timeline_text == inline.timeline_text
        assert forked.slo_report_json == inline.slo_report_json
        assert forked.trace_jsonl == inline.trace_jsonl
        assert forked.telemetry_jsonl == inline.telemetry_jsonl

    def test_data_plane_actually_engaged_in_golden_run(self):
        """Guard against the transparency test passing vacuously."""
        from repro.chaos import run_scenario

        result = run_scenario(
            "standby-takeover", seed=7, data_plane_partitions=4,
        )
        assert result.data_plane_partitions == 4
        assert result.dataplane_ticks > 0, (
            "the plane should own every step tick once attached"
        )
        assert result.plan_skew >= 1.0
