"""An end-to-end incident narrative across all the services.

One integration scenario exercising the full operational loop the paper
describes: a bad deploy makes a job OOM-loop → the health reporter pages →
the scaler raises memory → the job stabilizes → a later syncer outage
quarantines a job with a broken config → the oncall releases it after a
fix → the cluster returns to green.
"""

import pytest

from repro import JobSpec, PlatformConfig, ResourceVector, Turbine
from repro.jobs import ConfigLevel
from repro.ops.health import HealthThresholds
from repro.scaler import AutoScalerConfig
from repro.types import JobState
from repro.workloads import TrafficDriver


def build_platform():
    platform = Turbine.create(
        num_hosts=4, seed=37,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.attach_scaler(AutoScalerConfig(interval=120.0))
    platform.attach_health_reporter(
        thresholds=HealthThresholds(jobs_lagging_warn=0.01), interval=120.0,
    )
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(4):
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=4, rate_per_thread_mb=10.0),
        )
        driver.add_source(f"cat-{index}", lambda t: 8.0)
    driver.start()
    platform.run_for(minutes=10)
    return platform


def test_incident_lifecycle():
    platform = build_platform()
    baseline_report = platform.health.check_once()
    assert baseline_report.pct_jobs_lagging == 0.0

    # --- Phase 1: a bad deploy shrinks job-0's memory reservation. ------
    platform.job_service.patch(
        "job-0", ConfigLevel.PROVISIONER,
        {"resources": {"cpu": 1.0, "memory_gb": 0.42}},
    )
    platform.run_for(minutes=15)
    assert platform.metrics.latest("job-0", "oom_events") is not None, (
        "the tight reservation must OOM under 8 MB/s of buffered input"
    )

    # --- Phase 2: the scaler detects OOM and raises the reservation. ----
    platform.run_for(minutes=15)
    memory = platform.job_service.expected_config("job-0")["resources"][
        "memory_gb"
    ]
    assert memory > 0.42
    platform.run_for(minutes=15)
    oom_series = platform.metrics.series("job-0", "oom_events")
    recent = oom_series.values_in(platform.now - 600.0, platform.now)
    assert not recent, "OOMs stop once memory is right-sized"

    # --- Phase 3: a poisoned oncall config quarantines job-1. -----------
    # An actuator-visible failure: negative task count breaks spec
    # generation inside the plan.
    platform.job_service.patch(
        "job-1", ConfigLevel.ONCALL, {"task_count": -2}
    )
    platform.run_for(minutes=5)
    assert platform.job_store.state_of("job-1") == JobState.QUARANTINED
    assert platform.syncer.alerts, "quarantine must page the oncall"
    platform.health.check_once()
    assert any(
        "quarantined" in alert.what for alert in platform.health.alerts
    )

    # --- Phase 4: the oncall fixes the config and releases. -------------
    platform.job_service.clear_level("job-1", ConfigLevel.ONCALL)
    platform.syncer.release_quarantine("job-1")
    platform.run_for(minutes=5)
    assert platform.job_store.state_of("job-1") == JobState.RUNNING
    assert len(platform.tasks_of_job("job-1")) == 4

    # --- Phase 5: back to green. ----------------------------------------
    platform.run_for(minutes=10)
    final = platform.health.check_once()
    assert final.jobs_quarantined == 0
    assert final.pct_tasks_not_running == 0.0
