"""Smoke matrix: the platform works across extreme configurations."""

import pytest

from repro import JobSpec, PlatformConfig, ResourceVector, Turbine


@pytest.mark.parametrize(
    "description,config,num_hosts",
    [
        ("single host", PlatformConfig(num_shards=8, containers_per_host=1), 1),
        ("one shard per task", PlatformConfig(num_shards=512,
                                              containers_per_host=2), 2),
        ("very few shards", PlatformConfig(num_shards=2,
                                           containers_per_host=2), 2),
        ("many containers per host",
         PlatformConfig(num_shards=64, containers_per_host=4,
                        container_capacity=ResourceVector(
                            cpu=4.0, memory_gb=16.0)), 2),
        ("fast control loops",
         PlatformConfig(num_shards=16, containers_per_host=2,
                        sync_interval=5.0, refresh_interval=10.0,
                        cache_ttl=15.0), 2),
        ("slow control loops",
         PlatformConfig(num_shards=16, containers_per_host=2,
                        sync_interval=120.0, refresh_interval=300.0,
                        cache_ttl=600.0), 2),
    ],
)
def test_platform_schedules_under_config(description, config, num_hosts):
    platform = Turbine.create(num_hosts=num_hosts, seed=13, config=config)
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=4.0),
        partitions=8,
    )
    # Allow the slowest configuration's full propagation chain.
    platform.run_for(minutes=20)
    assert len(platform.tasks_of_job("job")) == 4, description
    platform.scribe.get_category("cat").append(60.0)
    platform.run_for(minutes=10)
    assert platform.job_lag_mb("job") < 1.0, description


def test_one_container_total():
    """Degenerate deployment: everything on one container."""
    platform = Turbine.create(
        num_hosts=1, seed=13,
        config=PlatformConfig(num_shards=4, containers_per_host=1),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=8)
    )
    platform.run_for(minutes=5)
    assert len(platform.tasks_of_job("job")) == 8
    only_manager = next(iter(platform.task_managers.values()))
    assert len(only_manager.assigned_shards) == 4
