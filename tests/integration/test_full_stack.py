"""Full-stack scenarios: all three layers plus workloads, over hours."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.scaler import AutoScalerConfig
from repro.workloads import DiurnalPattern, TrafficDriver


def full_platform(num_hosts=4, seed=21, downscale_after=1800.0):
    config = PlatformConfig(num_shards=64, containers_per_host=2)
    platform = Turbine.create(num_hosts=num_hosts, seed=seed, config=config)
    platform.attach_scaler(AutoScalerConfig(downscale_after=downscale_after))
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe)
    driver.start()
    return platform, driver


def test_multi_job_fleet_stays_within_slo():
    platform, driver = full_platform()
    rates = {"a": 2.0, "b": 4.0, "c": 1.0}
    for name, rate in rates.items():
        platform.provision(
            JobSpec(job_id=f"job-{name}", input_category=f"cat-{name}",
                    task_count=4, rate_per_thread_mb=2.0),
        )
        driver.add_source(f"cat-{name}", lambda t, r=rate: r)
    platform.run_for(hours=2)
    for name in rates:
        lag = platform.metrics.latest(f"job-{name}", "time_lagged")
        assert lag is not None and lag < 90.0, f"job-{name} must be in SLO"


def test_diurnal_traffic_handled_without_slo_violation():
    platform, driver = full_platform()
    pattern = DiurnalPattern(4.0, amplitude=0.3, daily_variation=0.01,
                             rng=platform.engine.rng.fork("wl"))
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=2.0),
    )
    driver.add_source("cat", pattern)
    platform.run_for(hours=6)
    lag_series = platform.metrics.series("job", "time_lagged")
    violations = [v for __, v in lag_series.all_points() if v > 90.0]
    assert not violations


def test_survives_rolling_host_failures_with_traffic():
    platform, driver = full_platform(num_hosts=5)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=8,
                rate_per_thread_mb=4.0),
    )
    driver.add_source("cat", lambda t: 6.0)
    platform.run_for(minutes=10)
    from repro.cluster import FailurePlan

    platform.failures.schedule_all([
        FailurePlan("host-0", fail_at=platform.now + 300.0),
        FailurePlan("host-1", fail_at=platform.now + 1200.0),
    ])
    platform.run_for(hours=1)
    # The scaler may legitimately resize the job along the way; what must
    # hold is that the *expected* parallelism is fully scheduled...
    expected = platform.job_service.expected_config("job")["task_count"]
    assert len(platform.tasks_of_job("job")) == expected
    assert expected >= 2, "6 MB/s at P=4 needs at least 2 tasks"
    # ...and lag recovered: failover pauses processing, then catches up.
    assert platform.metrics.latest("job", "time_lagged") < 90.0


def test_hot_added_host_participates():
    platform, driver = full_platform(num_hosts=2)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=8,
                rate_per_thread_mb=2.0),
    )
    driver.add_source("cat", lambda t: 4.0)
    platform.run_for(minutes=10)
    platform.add_host("host-new")
    platform.run_for(minutes=40)  # past a rebalance round
    new_managers = [
        manager for manager in platform.task_managers.values()
        if manager.container.host_id == "host-new"
    ]
    assert new_managers
    assert any(manager.assigned_shards for manager in new_managers)


def test_engine_upgrade_propagates_cluster_wide():
    """A global package release reaches every task within ~5 minutes
    (paper section I: tens of thousands of tasks within 5 minutes)."""
    from repro.jobs import ConfigLevel

    platform, driver = full_platform()
    for index in range(10):
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=4),
        )
    platform.run_for(minutes=5)
    start = platform.now
    for index in range(10):
        platform.job_service.patch(
            f"job-{index}", ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "9.9"}},
        )
    platform.run_for(minutes=5)
    versions = {
        task.spec.package_version
        for manager in platform.task_managers.values()
        for task in manager.tasks.values()
    }
    assert versions == {"9.9"}, "every running task on the new version"
    assert platform.now - start <= 300.0


def test_state_syncer_down_tasks_keep_processing():
    platform, driver = full_platform()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=4.0),
    )
    driver.add_source("cat", lambda t: 4.0)
    platform.run_for(minutes=10)
    platform.syncer.stop()  # Job Management control loop dies
    platform.run_for(hours=1)
    assert platform.metrics.latest("job", "time_lagged") < 90.0, (
        "data plane unaffected by a dead State Syncer"
    )
