"""Unit tests for the checkpoint store."""

import pytest

from repro.errors import ScribeError
from repro.scribe import CheckpointStore


def test_unknown_checkpoint_is_zero():
    assert CheckpointStore().get("job", "cat/0") == 0.0


def test_commit_and_get():
    store = CheckpointStore()
    store.commit("job", "cat/0", 100.0)
    assert store.get("job", "cat/0") == 100.0


def test_commit_moves_forward_only():
    store = CheckpointStore()
    store.commit("job", "cat/0", 100.0)
    with pytest.raises(ScribeError):
        store.commit("job", "cat/0", 99.0)


def test_commit_same_offset_allowed():
    """Idempotent re-commit is fine — the State Syncer retries actions."""
    store = CheckpointStore()
    store.commit("job", "cat/0", 100.0)
    store.commit("job", "cat/0", 100.0)
    assert store.get("job", "cat/0") == 100.0


def test_negative_offset_rejected():
    with pytest.raises(ScribeError):
        CheckpointStore().commit("job", "cat/0", -1.0)


def test_jobs_are_isolated():
    store = CheckpointStore()
    store.commit("job-a", "cat/0", 100.0)
    assert store.get("job-b", "cat/0") == 0.0


def test_partitions_of_sorted():
    store = CheckpointStore()
    store.commit("job", "cat/2", 1.0)
    store.commit("job", "cat/0", 1.0)
    assert store.partitions_of("job") == ["cat/0", "cat/2"]


def test_drop_job_forgets_everything():
    store = CheckpointStore()
    store.commit("job", "cat/0", 100.0)
    store.drop_job("job")
    assert store.get("job", "cat/0") == 0.0
    store.drop_job("job")  # idempotent


def test_snapshot_is_a_copy():
    store = CheckpointStore()
    store.commit("job", "cat/0", 100.0)
    snapshot = store.snapshot("job")
    snapshot["cat/0"] = 0.0
    assert store.get("job", "cat/0") == 100.0
