"""Unit tests for Scribe categories."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScribeError
from repro.scribe import Category


def test_partitions_named_by_category():
    category = Category("ads", 3)
    assert [p.partition_id for p in category.partitions] == [
        "ads/0", "ads/1", "ads/2",
    ]


def test_zero_partitions_rejected():
    with pytest.raises(ScribeError):
        Category("ads", 0)


def test_uniform_append_splits_evenly():
    category = Category("ads", 4)
    category.append(100.0)
    assert all(p.head == pytest.approx(25.0) for p in category.partitions)
    assert category.total_head() == pytest.approx(100.0)


def test_weighted_append_skews_traffic():
    category = Category("ads", 2)
    category.set_weights([3.0, 1.0])
    category.append(100.0)
    assert category.partitions[0].head == pytest.approx(75.0)
    assert category.partitions[1].head == pytest.approx(25.0)


def test_weights_reset_to_uniform():
    category = Category("ads", 2)
    category.set_weights([1.0, 0.0])
    category.set_weights(None)
    category.append(100.0)
    assert category.partitions[1].head == pytest.approx(50.0)


def test_wrong_weight_count_rejected():
    category = Category("ads", 3)
    with pytest.raises(ScribeError):
        category.set_weights([1.0, 2.0])


def test_negative_weight_rejected():
    with pytest.raises(ScribeError):
        Category("ads", 2).set_weights([1.0, -1.0])


def test_all_zero_weights_rejected():
    with pytest.raises(ScribeError):
        Category("ads", 2).set_weights([0.0, 0.0])


class TestPartitionSlices:
    def test_slices_are_disjoint_and_complete(self):
        """Every partition is owned by exactly one task — the core data-model
        property that makes task recovery independent (paper section II)."""
        category = Category("ads", 10)
        task_count = 3
        seen = []
        for task_index in range(task_count):
            seen.extend(
                p.partition_id
                for p in category.partition_slice(task_index, task_count)
            )
        assert sorted(seen) == [p.partition_id for p in category.partitions]
        assert len(seen) == len(set(seen))

    def test_round_robin_assignment(self):
        category = Category("ads", 5)
        slice_0 = category.partition_slice(0, 2)
        assert [p.partition_id for p in slice_0] == ["ads/0", "ads/2", "ads/4"]

    def test_more_tasks_than_partitions_leaves_some_idle(self):
        category = Category("ads", 2)
        assert category.partition_slice(2, 4) == []

    def test_bad_index_rejected(self):
        category = Category("ads", 4)
        with pytest.raises(ScribeError):
            category.partition_slice(2, 2)
        with pytest.raises(ScribeError):
            category.partition_slice(-1, 2)
        with pytest.raises(ScribeError):
            category.partition_slice(0, 0)

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    def test_slices_partition_the_category(self, num_partitions, task_count):
        category = Category("c", num_partitions)
        ids = []
        for task_index in range(task_count):
            ids.extend(
                p.partition_id
                for p in category.partition_slice(task_index, task_count)
            )
        assert sorted(ids) == sorted(p.partition_id for p in category.partitions)
