"""CommandLog: ordered append, retention horizon, offline reads."""

import pytest

from repro.scribe import CommandLog, RetentionError, ScribeBus


def test_append_returns_sequence_numbers():
    log = CommandLog("t")
    assert log.append("a") == 0
    assert log.append("b") == 1
    assert log.head_index == 2
    assert len(log) == 2
    assert log.read_from(0) == [(0, "a"), (1, "b")]


def test_read_from_middle_and_head():
    log = CommandLog("t")
    for payload in "abcd":
        log.append(payload)
    assert log.read_from(2) == [(2, "c"), (3, "d")]
    assert log.read_from(4) == []          # at the head: nothing new
    assert log.read_from(2, max_records=1) == [(2, "c")]


def test_retention_drops_oldest_and_raises_below_horizon():
    log = CommandLog("t", retention=2)
    for payload in "abcd":
        log.append(payload)
    assert log.first_index == 2
    assert log.head_index == 4
    assert log.read_from(2) == [(2, "c"), (3, "d")]
    with pytest.raises(RetentionError):
        log.read_from(1)


def test_trim_advances_horizon():
    log = CommandLog("t")
    for payload in "abcd":
        log.append(payload)
    assert log.trim(3) == 3
    assert log.first_index == 3
    assert log.read_from(3) == [(3, "d")]
    with pytest.raises(RetentionError):
        log.read_from(0)
    # Indexes never regress: trimming behind the horizon is a no-op.
    assert log.trim(1) == 0
    assert log.first_index == 3


def test_offline_log_reads_nothing_but_keeps_appends():
    log = CommandLog("t")
    log.append("a")
    log.online = False
    assert log.read_from(0) == []
    log.append("b")                        # producers keep buffering
    log.online = True
    assert log.read_from(0) == [(0, "a"), (1, "b")]


def test_bus_log_registry():
    bus = ScribeBus()
    log = bus.create_log("cmds")
    assert bus.get_log("cmds") is log
    assert bus.ensure_log("cmds") is log
    with pytest.raises(Exception):
        bus.create_log("cmds")
    with pytest.raises(Exception):
        bus.get_log("missing")
    # Logs and categories are separate namespaces.
    bus.ensure_category("cmds", 4)
    assert bus.get_category("cmds") is not log
