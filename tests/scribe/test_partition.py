"""Unit tests for Scribe partitions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScribeError
from repro.scribe import Partition


def test_starts_empty():
    partition = Partition("cat/0")
    assert partition.head == 0.0
    assert partition.available(0.0) == 0.0


def test_append_advances_head():
    partition = Partition("cat/0")
    assert partition.append(100.0) == 100.0
    assert partition.append(50.0) == 150.0


def test_negative_append_rejected():
    with pytest.raises(ScribeError):
        Partition("cat/0").append(-1.0)


def test_available_from_offset():
    partition = Partition("cat/0")
    partition.append(100.0)
    assert partition.available(0.0) == 100.0
    assert partition.available(60.0) == 40.0
    assert partition.available(100.0) == 0.0


def test_offset_beyond_head_rejected():
    partition = Partition("cat/0")
    partition.append(10.0)
    with pytest.raises(ScribeError):
        partition.available(11.0)


def test_negative_offset_rejected():
    with pytest.raises(ScribeError):
        Partition("cat/0").available(-1.0)


def test_read_bounded_by_available():
    partition = Partition("cat/0")
    partition.append(100.0)
    assert partition.read(0.0, 30.0) == 30.0
    assert partition.read(90.0, 30.0) == 10.0
    assert partition.read(100.0, 30.0) == 0.0


def test_read_negative_budget_rejected():
    partition = Partition("cat/0")
    with pytest.raises(ScribeError):
        partition.read(0.0, -5.0)


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=30))
def test_head_is_sum_of_appends(appends):
    partition = Partition("cat/0")
    for num_bytes in appends:
        partition.append(num_bytes)
    assert partition.head == pytest.approx(sum(appends))


@given(
    st.floats(min_value=0, max_value=1e6),
    st.floats(min_value=0, max_value=1e6),
)
def test_read_never_exceeds_available(total, budget):
    partition = Partition("cat/0")
    partition.append(total)
    consumed = partition.read(0.0, budget)
    assert consumed <= total + 1e-9
    assert consumed <= budget + 1e-9
