"""Unit tests for the Scribe bus."""

import pytest

from repro.errors import ScribeError
from repro.scribe import ScribeBus


def test_create_and_get():
    bus = ScribeBus()
    category = bus.create_category("ads", 4)
    assert bus.get_category("ads") is category


def test_duplicate_create_rejected():
    bus = ScribeBus()
    bus.create_category("ads", 4)
    with pytest.raises(ScribeError):
        bus.create_category("ads", 4)


def test_unknown_category_rejected():
    with pytest.raises(ScribeError):
        ScribeBus().get_category("nope")


def test_ensure_category_idempotent():
    bus = ScribeBus()
    first = bus.ensure_category("ads", 4)
    second = bus.ensure_category("ads", 8)  # partition count ignored on reuse
    assert first is second
    assert first.num_partitions == 4


def test_category_names_sorted():
    bus = ScribeBus()
    bus.create_category("zeta", 1)
    bus.create_category("alpha", 1)
    assert bus.category_names() == ["alpha", "zeta"]


def test_bus_has_checkpoint_store():
    bus = ScribeBus()
    bus.checkpoints.commit("job", "ads/0", 5.0)
    assert bus.checkpoints.get("job", "ads/0") == 5.0
