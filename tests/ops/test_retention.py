"""Retention caps on the in-memory audit trails.

Long soak simulations run the services for months of simulated time; every
append-only record list must be bounded, and windowed queries (like
``failovers_last_hour``) must stay correct inside the retained window.
"""

from repro import PlatformConfig, Turbine
from repro.jobs.store import JobStore
from repro.jobs.syncer import StateSyncer
from repro.obs.bounded import BoundedList
from repro.ops.health import HealthReporter
from repro.scaler.capacity import CapacityConfig, CapacityManager
from repro.sim.engine import Engine
from repro.tasks.shard_manager import FailoverEvent, ShardManager


class _IdleActuator:
    def known_job_ids(self):
        return []


def test_syncer_round_history_is_bounded():
    syncer = StateSyncer(JobStore(), _IdleActuator(), round_retention=3)
    for __ in range(10):
        syncer.sync_once()
    assert len(syncer.rounds) <= 3
    assert isinstance(syncer.rounds, BoundedList)


def test_health_reports_and_alerts_are_bounded():
    platform = Turbine.create(
        num_hosts=1, seed=5, config=PlatformConfig(num_shards=4)
    )
    platform.start()
    reporter = HealthReporter(
        platform.engine, platform.job_service, platform.task_service,
        platform.shard_manager, platform.metrics, retention=2,
    )
    for __ in range(6):
        reporter.check_once()
    assert len(reporter.reports) <= 2
    assert reporter.reports[-1].time == platform.now


def test_capacity_events_are_bounded():
    manager = CapacityManager(
        None, None, None, None, None,
        config=CapacityConfig(event_retention=7),
    )
    assert isinstance(manager.events, BoundedList)
    assert manager.events.maxlen == 7


def test_failover_events_are_bounded():
    shard_manager = ShardManager(Engine(), num_shards=4, failover_retention=5)
    assert isinstance(shard_manager.failover_events, BoundedList)
    assert shard_manager.failover_events.maxlen == 5


def test_failovers_last_hour_correct_within_window():
    platform = Turbine.create(
        num_hosts=1, seed=5, config=PlatformConfig(num_shards=4)
    )
    platform.start()
    platform.run_for(hours=2)
    now = platform.now
    events = platform.shard_manager.failover_events
    events.append(FailoverEvent(now - 7200.0, "turbine-old", 1))
    events.append(FailoverEvent(now - 60.0, "turbine-recent", 1))
    reporter = HealthReporter(
        platform.engine, platform.job_service, platform.task_service,
        platform.shard_manager, platform.metrics,
    )
    assert reporter.report().failovers_last_hour == 1
