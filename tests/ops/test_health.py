"""Tests for the health reporter and alerting (paper section VII)."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.ops import HealthReporter
from repro.ops.health import HealthThresholds
from repro.workloads import TrafficDriver


def healthy_platform(num_jobs=3, seed=23):
    platform = Turbine.create(
        num_hosts=3, seed=seed,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(num_jobs):
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=4, rate_per_thread_mb=4.0),
        )
        driver.add_source(f"cat-{index}", lambda t: 4.0)
    driver.start()
    reporter = HealthReporter(
        platform.engine, platform.job_service, platform.task_service,
        platform.shard_manager, platform.metrics,
    )
    platform.run_for(minutes=5)
    return platform, reporter


class TestReport:
    def test_healthy_cluster_reports_clean(self):
        platform, reporter = healthy_platform()
        report = reporter.check_once()
        assert report.jobs_total == 3
        assert report.tasks_expected == 12
        assert report.tasks_running == 12
        assert report.pct_tasks_not_running == 0.0
        assert report.pct_jobs_lagging == 0.0
        assert reporter.alerts == []

    def test_render_contains_headline_metrics(self):
        platform, reporter = healthy_platform()
        text = reporter.check_once().render()
        assert "tasks not running" in text
        assert "jobs lagging" in text
        assert "failovers" in text

    def test_missing_tasks_detected(self):
        platform, reporter = healthy_platform()
        # Kill a host and look before failover restores the tasks.
        platform.cluster.fail_host("host-0")
        platform.run_for(seconds=30.0)
        report = reporter.check_once()
        assert report.pct_tasks_not_running > 0.0

    def test_failovers_counted(self):
        platform, reporter = healthy_platform()
        platform.cluster.fail_host("host-0")
        platform.run_for(minutes=3)
        report = reporter.check_once()
        assert report.failovers_last_hour >= 1

    def test_lagging_jobs_counted(self):
        platform, reporter = healthy_platform()
        platform.scribe.get_category("cat-0").append(100000.0)
        platform.run_for(minutes=3)
        report = reporter.check_once()
        assert report.jobs_lagging >= 1

    def test_degraded_task_service_tolerated(self):
        platform, reporter = healthy_platform()
        platform.task_service.available = False
        report = reporter.check_once()
        assert report.tasks_expected == 0  # unknown, not a crash


class TestAlerts:
    def test_page_on_mass_task_loss(self):
        platform, reporter = healthy_platform()
        for manager in list(platform.task_managers.values()):
            manager.container.kill()
        platform.run_for(seconds=10.0)
        reporter.check_once()
        pages = [a for a in reporter.alerts if a.severity == "page"]
        assert pages
        assert any("not running" in a.what for a in pages)
        assert all(a.runbook for a in pages)

    def test_warn_threshold_below_page(self):
        platform, reporter = healthy_platform(num_jobs=8)
        reporter.thresholds = HealthThresholds(
            tasks_not_running_warn=0.01, tasks_not_running_page=0.9,
        )
        # Stop one task of 32: ~3% missing → warn, not page.
        manager = next(
            m for m in platform.task_managers.values() if m.tasks
        )
        task_id = next(iter(manager.tasks))
        manager._stop_task(task_id)
        reporter.check_once()
        severities = {a.severity for a in reporter.alerts}
        assert severities == {"warn"}

    def test_quarantine_pages(self):
        platform, reporter = healthy_platform()
        from repro.types import JobState

        platform.job_store.set_state("job-0", JobState.QUARANTINED)
        reporter.check_once()
        assert any("quarantined" in a.what for a in reporter.alerts)

    def test_periodic_reporting(self):
        platform, reporter = healthy_platform()
        reporter.start()
        platform.run_for(minutes=16)
        assert len(reporter.reports) == 3
        reporter.stop()
        platform.run_for(minutes=10)
        assert len(reporter.reports) == 3


class TestSliSourcing:
    """The job-side percentages come from the SLI layer, not an inline loop."""

    def test_report_matches_fleet_counts(self):
        platform, reporter = healthy_platform()
        platform.scribe.get_category("cat-0").append(100000.0)
        platform.run_for(minutes=3)
        report = reporter.report()
        counts = reporter.sli.fleet_counts(platform.now)
        assert report.jobs_total == counts.jobs_total
        assert report.jobs_lagging == counts.jobs_lagging
        assert report.jobs_quarantined == counts.jobs_quarantined
        assert report.jobs_with_oom == counts.jobs_with_oom
        assert report.pct_jobs_lagging == counts.pct_lagging

    def test_injected_evaluator_is_used(self):
        from repro.obs.sli import SliEvaluator

        platform, _ = healthy_platform()
        shared = SliEvaluator(platform.job_service, platform.metrics)
        reporter = HealthReporter(
            platform.engine, platform.job_service, platform.task_service,
            platform.shard_manager, platform.metrics, sli=shared,
        )
        assert reporter.sli is shared
        evals = shared.evaluations
        reporter.report()
        # fleet_counts goes through the shared evaluator's judgements.
        assert shared.evaluations >= evals

    def test_degraded_job_store_still_degrades_gracefully(self):
        platform, reporter = healthy_platform()
        platform.job_store.available = False
        report = reporter.check_once()
        assert report.jobs_total == 0  # empty degraded report, no crash
        assert any("degraded" in a.what for a in reporter.alerts)
