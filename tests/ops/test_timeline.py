"""Tests for the merged incident timeline."""

import pytest

from repro import JobSpec, PlatformConfig, Turbine
from repro.cluster import FailurePlan
from repro.ops import IncidentTimeline
from repro.workloads import TrafficDriver


def eventful_platform():
    platform = Turbine.create(
        num_hosts=3, seed=43,
        config=PlatformConfig(num_shards=16, containers_per_host=2),
    )
    platform.attach_scaler()
    platform.attach_health_reporter(interval=120.0)
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=2.0, task_count_limit=32),
        partitions=32,
    )
    driver.add_source("cat", lambda t: 2.0)
    driver.start()
    platform.run_for(minutes=5)
    return platform


def test_empty_platform_empty_timeline():
    platform = Turbine.create(num_hosts=1, seed=1)
    platform.start()
    assert IncidentTimeline(platform).events() == []


def test_host_failure_produces_ordered_story():
    platform = eventful_platform()
    platform.failures.schedule(
        FailurePlan("host-0", fail_at=platform.now + 60.0)
    )
    platform.run_for(minutes=5)
    timeline = IncidentTimeline(platform)
    events = timeline.events()
    kinds = [(event.source, event.kind) for event in events]
    assert ("cluster", "host-fail") in kinds
    assert ("shard-manager", "failover") in kinds
    # The failure precedes its failover in the merged order.
    fail_index = kinds.index(("cluster", "host-fail"))
    failover_index = kinds.index(("shard-manager", "failover"))
    assert fail_index < failover_index
    times = [event.time for event in events]
    assert times == sorted(times)


def test_scaler_actions_appear():
    platform = eventful_platform()
    # Overload the job so the scaler acts.
    for __ in range(15):
        platform.scribe.get_category("cat").append(30.0 * 60.0)
        platform.run_for(minutes=1)
    events = IncidentTimeline(platform).events()
    assert any(event.source == "auto-scaler" for event in events)


def test_window_filters():
    platform = eventful_platform()
    platform.failures.schedule(FailurePlan("host-0", fail_at=platform.now + 60.0))
    platform.run_for(minutes=5)
    cut = platform.now
    platform.failures.schedule(FailurePlan("host-1", fail_at=platform.now + 60.0))
    platform.run_for(minutes=5)
    timeline = IncidentTimeline(platform)
    early = timeline.events(until=cut)
    late = timeline.events(since=cut)
    assert all(event.time <= cut for event in early)
    assert all(event.time >= cut for event in late)
    assert any(event.detail == "host-0 [scripted]" for event in early)
    assert any(event.detail == "host-1 [scripted]" for event in late)


def test_render_is_tabular():
    platform = eventful_platform()
    platform.cluster.fail_host("host-0")
    platform.run_for(minutes=3)
    text = IncidentTimeline(platform).render()
    assert "shard-manager" in text
    assert "failover" in text
    lines = text.splitlines()
    assert len(lines) >= 3


def test_tolerates_missing_services():
    """Collectors must not assume any optional service is attached."""

    class Bare:
        now = 123.0

    assert IncidentTimeline(Bare()).events() == []


def test_source_filter_is_exact():
    platform = eventful_platform()
    platform.cluster.fail_host("host-0")
    platform.run_for(minutes=3)
    timeline = IncidentTimeline(platform)
    only = timeline.events(sources=["shard-manager"])
    assert only
    assert all(event.source == "shard-manager" for event in only)
    assert timeline.events(sources=["shard"]) == []  # no substring match


def test_kind_filter_is_substring():
    platform = eventful_platform()
    platform.failures.schedule(
        FailurePlan("host-0", fail_at=platform.now + 60.0)
    )
    platform.run_for(minutes=3)
    timeline = IncidentTimeline(platform)
    fails = timeline.events(kinds=["fail"])
    assert fails
    assert all("fail" in event.kind for event in fails)
    kinds = {event.kind for event in fails}
    assert "host-fail" in kinds and "failover" in kinds


def test_trace_events_merged_without_duplicates():
    platform = eventful_platform()
    platform.enable_tracing()
    # Overload the job so the (traced) scaler acts.
    for __ in range(10):
        platform.scribe.get_category("cat").append(30.0 * 60.0)
        platform.run_for(minutes=1)
    timeline = IncidentTimeline(platform)
    events = timeline.events()
    sources = {event.source for event in events}
    assert "job-store" in sources or "state-syncer" in sources
    # Scaler decisions come only from the scaler collector; the trace
    # collector must not add a second copy of each action.
    action_events = [
        event for event in events
        if event.source == "auto-scaler" and event.kind != "untriaged"
    ]
    assert len(action_events) == len(platform.scaler.actions)


def test_trace_collector_skips_disabled_tracer():
    platform = eventful_platform()
    assert IncidentTimeline(platform)._trace_events() == []
