"""Property tests for the discrete-event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1, max_size=40,
    )
)
def test_events_always_delivered_in_time_order(delays):
    engine = Engine()
    fired = []
    for index, delay in enumerate(delays):
        engine.call_in(
            delay, lambda t=delay, i=index: fired.append((engine.now, t, i))
        )
    engine.run_until(1001.0)
    assert len(fired) == len(delays)
    times = [now for now, __, __ in fired]
    assert times == sorted(times)
    for now, delay, __ in fired:
        assert now == delay


@settings(max_examples=40, deadline=None)
@given(
    same_time_count=st.integers(min_value=1, max_value=20),
    at=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_simultaneous_events_fifo(same_time_count, at):
    engine = Engine()
    order = []
    for index in range(same_time_count):
        engine.call_at(at, lambda i=index: order.append(i))
    engine.run_until(101.0)
    assert order == list(range(same_time_count))


@settings(max_examples=40, deadline=None)
@given(
    interval=st.floats(min_value=0.5, max_value=50.0, allow_nan=False),
    horizon=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
)
def test_timer_fires_exactly_floor_times(interval, horizon):
    engine = Engine()
    timer = engine.every(interval, lambda: None)
    engine.run_until(horizon)
    expected = int(horizon / interval)
    # Floating point: the firing at k*interval counts iff k*interval <= horizon.
    assert abs(timer.fire_count - expected) <= 1


@settings(max_examples=30, deadline=None)
@given(
    splits=st.lists(
        st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
        min_size=1, max_size=10,
    )
)
def test_run_until_tiles_time_exactly(splits):
    """Many small run_for calls equal one big one (no time leaks)."""
    engine = Engine()
    ticks = []
    engine.every(1.0, lambda: ticks.append(engine.now))
    for split in splits:
        engine.run_for(split)
    assert engine.now == sum(splits)

    reference = Engine()
    ref_ticks = []
    reference.every(1.0, lambda: ref_ticks.append(reference.now))
    reference.run_for(sum(splits))
    assert ticks == ref_ticks
