"""Property tests: the parallel substrate is invisible in every export.

For arbitrary small fleets, running at N partitions must produce
byte-identical exports to the single loop — fingerprints, timelines,
SLO reports, deterministic telemetry, and the landed metric series.
These are the properties the golden 3-seed integration tests then pin
on full-day scenarios.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MetricSlice, merge_slices
from repro.sim.parallel import run_fleet, standard_fleet

_EXPORTS = ("fingerprint_json", "timeline_text", "slo_json", "telemetry_jsonl")


def _exports(result):
    return {name: getattr(result, name) for name in _EXPORTS}


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    partitions=st.integers(min_value=2, max_value=6),
    num_jobs=st.integers(min_value=1, max_value=6),
)
def test_any_partition_count_matches_single_loop(seed, partitions, num_jobs):
    spec = standard_fleet(
        seed=seed,
        total_tasks=num_jobs * 20,
        num_jobs=num_jobs,
        num_shards=16,
        duration=4 * 3600.0,
        step_interval=600.0,
        round_interval=1800.0,
    )
    base = run_fleet(spec, partitions=1)
    other = run_fleet(spec, partitions=partitions)
    assert _exports(base) == _exports(other)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    partitions=st.integers(min_value=2, max_value=4),
)
def test_metric_store_series_match_single_loop(seed, partitions):
    spec = standard_fleet(
        seed=seed,
        total_tasks=60,
        num_jobs=3,
        num_shards=8,
        duration=3 * 3600.0,
        step_interval=600.0,
        round_interval=3600.0,
    )
    base = run_fleet(spec, partitions=1)
    other = run_fleet(spec, partitions=partitions)
    for job in base.store.entities_with("lag_mb"):
        for metric in ("lag_mb", "processed_mb"):
            assert (
                base.store.series(job, metric).all_points()
                == other.store.series(job, metric).all_points()
            ), (job, metric)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    stats_divisor=st.sampled_from([2, 3, 6]),
)
def test_mid_round_stats_sampling_stays_identical(seed, stats_divisor):
    """Stats timers firing inside rounds merge identically too."""
    spec = standard_fleet(
        seed=seed,
        total_tasks=40,
        num_jobs=2,
        num_shards=8,
        duration=2 * 3600.0,
        step_interval=600.0,
        round_interval=3600.0,
        stats_interval=3600.0 / stats_divisor,
    )
    base = run_fleet(spec, partitions=1)
    other = run_fleet(spec, partitions=3)
    assert _exports(base) == _exports(other)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from([0.0, 60.0, 120.0]),
            st.sampled_from(["job-a", "job-b", "job-c"]),
            st.sampled_from(["lag_mb", "processed_mb"]),
            st.integers(min_value=0, max_value=10**9),
        ),
        max_size=30,
    ),
    pivots=st.lists(
        st.integers(min_value=0, max_value=30), max_size=3
    ),
)
def test_merge_slices_is_split_invariant(rows, pivots):
    """However rows are split into slices, the merge is identical."""
    rows = [(t, e, m, v / 1e6) for t, e, m, v in rows]
    whole = MetricSlice(rows=list(rows))
    cuts = sorted({p for p in pivots if p <= len(rows)} | {0, len(rows)})
    pieces = [
        MetricSlice(rows=rows[a:b]) for a, b in zip(cuts, cuts[1:])
    ]
    assert (
        merge_slices([whole]).rows
        == merge_slices(pieces or [MetricSlice()]).rows
    )
