"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    assert queue.peek_time() is None


def test_pop_from_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_events_pop_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(3.0, lambda: order.append("c"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(2.0, lambda: order.append("b"))
    while queue:
        __, callback = queue.pop()
        callback()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    """Ties break by scheduling order, keeping runs deterministic."""
    queue = EventQueue()
    order = []
    for label in "abcde":
        queue.push(1.0, lambda label=label: order.append(label))
    while queue:
        __, callback = queue.pop()
        callback()
    assert order == list("abcde")


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(-0.1, lambda: None)


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append("cancelled"))
    queue.push(2.0, lambda: fired.append("kept"))
    event.cancel()
    assert len(queue) == 1
    time, callback = queue.pop()
    callback()
    assert time == 2.0
    assert fired == ["kept"]


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    event.cancel()
    assert queue.peek_time() == 5.0


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
