"""Property suite for the load-aware LPT partition plan.

Three guarantees back the data plane's use of
:meth:`PartitionPlan.load_aware`:

* **never worse than modulo** — the greedy pack falls back to the modulo
  fold whenever it would lose on max-partition cost, so attaching the
  load-aware plan can only shrink the wall-clock bound;
* **deterministic** — the plan is a pure function of its inputs, and the
  *packing* (the partition-cost multiset) is a function of the cost
  multiset alone, so permuting which shard carries which cost cannot
  change how well the fleet balances;
* **value semantics** — a plan pickled to a worker answers ownership
  queries identically to the coordinator's original.

Integer costs keep every load sum exact, so the permutation property is
a strict equality rather than a float-tolerance check.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.parallel import PartitionPlan, measure_shard_costs, standard_fleet

COSTS = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=1, max_size=48
)


@st.composite
def costs_and_width(draw):
    costs = draw(COSTS)
    width = draw(st.integers(min_value=1, max_value=len(costs)))
    return costs, width


@settings(max_examples=120, deadline=None)
@given(case=costs_and_width())
def test_load_aware_never_worse_than_modulo(case):
    costs, width = case
    plan = PartitionPlan.load_aware(len(costs), width, costs)
    modulo = PartitionPlan(len(costs), width)
    assert plan.max_cost(costs) <= modulo.max_cost(costs)
    # Same total spread over the same partition count: beating modulo on
    # max cost means beating it on skew too.
    assert plan.skew(costs) <= modulo.skew(costs) + 1e-12


@settings(max_examples=120, deadline=None)
@given(case=costs_and_width())
def test_plan_is_deterministic(case):
    costs, width = case
    first = PartitionPlan.load_aware(len(costs), width, costs)
    second = PartitionPlan.load_aware(len(costs), width, list(costs))
    assert first == second
    assert first.assignment == second.assignment


@settings(max_examples=80, deadline=None)
@given(case=costs_and_width(), data=st.data())
def test_packing_invariant_under_cost_permutation(case, data):
    """Permuting shard costs permutes the assignment, not the packing."""
    costs, width = case
    permuted = data.draw(st.permutations(costs))
    original = PartitionPlan.lpt(len(costs), width, costs)
    shuffled = PartitionPlan.lpt(len(costs), width, permuted)
    assert sorted(original.partition_costs(costs)) == sorted(
        shuffled.partition_costs(permuted)
    )
    assert original.max_cost(costs) == shuffled.max_cost(permuted)


@settings(max_examples=80, deadline=None)
@given(case=costs_and_width())
def test_plan_tiles_the_shard_space(case):
    costs, width = case
    plan = PartitionPlan.load_aware(len(costs), width, costs)
    covered = sorted(
        shard for p in range(width) for shard in plan.shards_of(p)
    )
    assert covered == list(range(len(costs)))
    for shard in range(len(costs)):
        owners = [p for p in range(width) if plan.owns_shard(shard, p)]
        assert owners == [plan.partition_of_shard(shard)]


@settings(max_examples=80, deadline=None)
@given(case=costs_and_width())
def test_plan_pickle_round_trip_is_stable(case):
    costs, width = case
    plan = PartitionPlan.load_aware(len(costs), width, costs)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.assignment == plan.assignment
    assert [clone.partition_of_shard(s) for s in range(len(costs))] == [
        plan.partition_of_shard(s) for s in range(len(costs))
    ]
    assert clone.partition_costs(costs) == plan.partition_costs(costs)


def test_lpt_beats_modulo_on_100k_task_fleet():
    """Acceptance: LPT max-partition cost <= modulo's at fleet scale."""
    spec = standard_fleet(
        seed=0, total_tasks=100_000, num_jobs=100, num_shards=256
    )
    costs = measure_shard_costs(spec, rounds=1)
    assert len(costs) == 256
    assert all(c >= 0 for c in costs)
    for width in (2, 4, 8):
        plan = PartitionPlan.load_aware(256, width, costs)
        modulo = PartitionPlan(256, width)
        assert plan.max_cost(costs) <= modulo.max_cost(costs)
    # Measurement is a pure function of (spec, rounds): every process
    # derives the same costs, hence the same plan, without coordination.
    again = measure_shard_costs(
        standard_fleet(
            seed=0, total_tasks=100_000, num_jobs=100, num_shards=256
        ),
        rounds=1,
    )
    assert again == costs
