"""Unit tests for the seeded RNG helpers."""

import pytest

from repro.sim import SeededRng


def test_same_seed_reproduces_sequence():
    a, b = SeededRng(7), SeededRng(7)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_fork_streams_are_independent():
    parent = SeededRng(7)
    child_a = parent.fork("scribe")
    child_b = parent.fork("cluster")
    assert [child_a.random() for _ in range(5)] != [
        child_b.random() for _ in range(5)
    ]


def test_fork_is_deterministic():
    a = SeededRng(7).fork("scribe")
    b = SeededRng(7).fork("scribe")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_uniform_within_bounds():
    rng = SeededRng(0)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_within_bounds():
    rng = SeededRng(0)
    values = {rng.randint(1, 3) for _ in range(100)}
    assert values == {1, 2, 3}


def test_jitter_stays_within_fraction():
    rng = SeededRng(0)
    for _ in range(100):
        value = rng.jitter(100.0, 0.1)
        assert 90.0 <= value <= 110.0


def test_jitter_zero_fraction_is_identity():
    assert SeededRng(0).jitter(42.0, 0.0) == 42.0


def test_jitter_negative_fraction_rejected():
    with pytest.raises(ValueError):
        SeededRng(0).jitter(1.0, -0.5)


def test_choice_and_sample():
    rng = SeededRng(0)
    items = ["a", "b", "c"]
    assert rng.choice(items) in items
    sampled = rng.sample(items, 2)
    assert len(sampled) == 2
    assert set(sampled) <= set(items)


def test_lognormal_is_positive():
    rng = SeededRng(0)
    assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(50))


def test_seed_property():
    assert SeededRng(99).seed == 99
