"""Unit tests for the seeded RNG helpers."""

import pytest

from repro.sim import SeededRng


def test_same_seed_reproduces_sequence():
    a, b = SeededRng(7), SeededRng(7)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_fork_streams_are_independent():
    parent = SeededRng(7)
    child_a = parent.fork("scribe")
    child_b = parent.fork("cluster")
    assert [child_a.random() for _ in range(5)] != [
        child_b.random() for _ in range(5)
    ]


def test_fork_is_deterministic():
    a = SeededRng(7).fork("scribe")
    b = SeededRng(7).fork("scribe")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_uniform_within_bounds():
    rng = SeededRng(0)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_within_bounds():
    rng = SeededRng(0)
    values = {rng.randint(1, 3) for _ in range(100)}
    assert values == {1, 2, 3}


def test_jitter_stays_within_fraction():
    rng = SeededRng(0)
    for _ in range(100):
        value = rng.jitter(100.0, 0.1)
        assert 90.0 <= value <= 110.0


def test_jitter_zero_fraction_is_identity():
    assert SeededRng(0).jitter(42.0, 0.0) == 42.0


def test_jitter_negative_fraction_rejected():
    with pytest.raises(ValueError):
        SeededRng(0).jitter(1.0, -0.5)


def test_choice_and_sample():
    rng = SeededRng(0)
    items = ["a", "b", "c"]
    assert rng.choice(items) in items
    sampled = rng.sample(items, 2)
    assert len(sampled) == 2
    assert set(sampled) <= set(items)


def test_lognormal_is_positive():
    rng = SeededRng(0)
    assert all(rng.lognormal(0.0, 1.0) > 0 for _ in range(50))


def test_seed_property():
    assert SeededRng(99).seed == 99


# ----------------------------------------------------------------------
# Fork independence and process-boundary stability (parallel substrate)
# ----------------------------------------------------------------------

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_partition_forks_pairwise_decoupled(seed):
    """Every pair of partition streams draws differently."""
    root = SeededRng(seed)
    streams = [root.fork(f"partition-{i}") for i in range(6)]
    draws = [tuple(s.random() for _ in range(8)) for s in streams]
    for i in range(len(draws)):
        for j in range(i + 1, len(draws)):
            assert draws[i] != draws[j], (i, j)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    index=st.integers(min_value=0, max_value=63),
)
def test_partition_fork_reproducible_from_scratch(seed, index):
    """fork(label) is a pure function of (seed, label)."""
    a = SeededRng(seed).fork(f"partition-{index}")
    b = SeededRng(seed).fork(f"partition-{index}")
    assert [a.random() for _ in range(10)] == [
        b.random() for _ in range(10)
    ]


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_forking_does_not_perturb_parent(seed):
    """A partition fork must not consume parent entropy."""
    plain = SeededRng(seed)
    forked = SeededRng(seed)
    forked.fork("partition-0")
    forked.fork("partition-1")
    assert [plain.random() for _ in range(10)] == [
        forked.random() for _ in range(10)
    ]


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    consumed=st.integers(min_value=0, max_value=20),
)
def test_forked_rng_survives_pickle_mid_stream(seed, consumed):
    """Shipping a forked rng to a worker continues the same stream.

    The multiprocessing path pickles partition state to worker
    processes; a rng that had already drawn ``consumed`` values must
    resume at draw ``consumed + 1``, not restart.
    """
    original = SeededRng(seed).fork("partition-3")
    for _ in range(consumed):
        original.random()
    clone = pickle.loads(pickle.dumps(original))
    assert [original.random() for _ in range(10)] == [
        clone.random() for _ in range(10)
    ]


def test_fork_labels_differ_from_sibling_namespaces():
    root = SeededRng(7)
    assert [root.fork("partition-1").random() for _ in range(5)] != [
        root.fork("partition-10").random() for _ in range(5)
    ]
