"""Unit tests for the simulation clock."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now == 0.0


def test_starts_at_custom_time():
    assert SimClock(start=12.5).now == 12.5


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        SimClock(start=-1.0)


def test_advance_moves_forward():
    clock = SimClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_same_time_is_noop():
    clock = SimClock(start=5.0)
    clock.advance_to(5.0)
    assert clock.now == 5.0


def test_advance_backwards_rejected():
    clock = SimClock(start=10.0)
    with pytest.raises(SimulationError):
        clock.advance_to(9.999)


def test_repr_mentions_time():
    assert "3.000" in repr(SimClock(start=3.0))
