"""Unit tests for the MD5 shard → partition fold."""

import pytest

from repro.errors import SimulationError
from repro.sim.parallel import (
    PartitionPlan,
    partition_for_shard,
    partition_for_task,
)
from repro.tasks.shard import shard_index_for_task


def test_partition_is_shard_modulo_n():
    for shard in range(32):
        assert partition_for_shard(shard, 4) == shard % 4


def test_partition_for_task_composes_md5_and_fold():
    task_id = "demo/job-0/3"
    assert partition_for_task(task_id, 64, 4) == (
        shard_index_for_task(task_id, 64) % 4
    )


def test_single_partition_owns_everything():
    plan = PartitionPlan(num_shards=16, num_partitions=1)
    assert all(plan.owns_shard(s, 0) for s in range(16))


def test_partitions_tile_the_shard_space():
    plan = PartitionPlan(num_shards=33, num_partitions=4)
    owners = [
        [p for p in range(4) if plan.owns_shard(s, p)] for s in range(33)
    ]
    assert all(len(who) == 1 for who in owners)
    covered = sorted(s for p in range(4) for s in plan.shards_of(p))
    assert covered == list(range(33))


def test_task_ownership_matches_shard_ownership():
    plan = PartitionPlan(num_shards=64, num_partitions=3)
    for i in range(50):
        task_id = f"job-0001/{i}"
        owner = partition_for_task(task_id, 64, 3)
        for p in range(3):
            assert plan.owns_task(task_id, p) == (p == owner)


def test_plan_rejects_more_partitions_than_shards():
    with pytest.raises(SimulationError):
        PartitionPlan(num_shards=2, num_partitions=3)


def test_plan_rejects_nonpositive_sizes():
    with pytest.raises(SimulationError):
        PartitionPlan(num_shards=0, num_partitions=1)
    with pytest.raises(SimulationError):
        PartitionPlan(num_shards=4, num_partitions=0)
    with pytest.raises(SimulationError):
        partition_for_shard(1, 0)


def test_shards_of_rejects_out_of_range_index():
    plan = PartitionPlan(num_shards=8, num_partitions=2)
    with pytest.raises(SimulationError):
        plan.shards_of(2)


def test_distribution_is_roughly_uniform():
    """MD5 spreads realistic task ids evenly over partitions."""
    counts = [0, 0, 0, 0]
    for job in range(20):
        for i in range(50):
            counts[partition_for_task(f"job-{job:04d}/{i}", 256, 4)] += 1
    assert sum(counts) == 1000
    assert min(counts) > 150  # no partition starves
