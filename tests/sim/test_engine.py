"""Unit tests for the discrete-event engine and periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_call_in_fires_at_right_time():
    engine = Engine()
    seen = []
    engine.call_in(5.0, lambda: seen.append(engine.now))
    engine.run_until(10.0)
    assert seen == [5.0]
    assert engine.now == 10.0


def test_call_at_absolute_time():
    engine = Engine()
    seen = []
    engine.call_at(7.5, lambda: seen.append(engine.now))
    engine.run_until(7.5)
    assert seen == [7.5]


def test_call_at_in_the_past_rejected():
    engine = Engine()
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().call_in(-1.0, lambda: None)


def test_run_until_excludes_later_events():
    engine = Engine()
    seen = []
    engine.call_in(5.0, lambda: seen.append("early"))
    engine.call_in(15.0, lambda: seen.append("late"))
    engine.run_until(10.0)
    assert seen == ["early"]
    engine.run_until(20.0)
    assert seen == ["early", "late"]


def test_run_until_event_exactly_on_deadline_fires():
    engine = Engine()
    seen = []
    engine.call_in(10.0, lambda: seen.append("on-deadline"))
    engine.run_until(10.0)
    assert seen == ["on-deadline"]


def test_run_for_advances_relative():
    engine = Engine()
    engine.run_for(3.0)
    engine.run_for(4.0)
    assert engine.now == 7.0


def test_run_until_past_deadline_rejected():
    engine = Engine()
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.run_until(5.0)


def test_events_scheduled_during_run_are_delivered():
    engine = Engine()
    seen = []

    def chain():
        seen.append(engine.now)
        if engine.now < 3.0:
            engine.call_in(1.0, chain)

    engine.call_in(1.0, chain)
    engine.run_until(10.0)
    assert seen == [1.0, 2.0, 3.0]


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_drain_counts_events():
    engine = Engine()
    for i in range(5):
        engine.call_in(float(i + 1), lambda: None)
    assert engine.drain() == 5


def test_drain_guards_against_runaway():
    engine = Engine()

    def reschedule():
        engine.call_in(1.0, reschedule)

    engine.call_in(1.0, reschedule)
    with pytest.raises(SimulationError):
        engine.drain(max_events=100)


class TestTimer:
    def test_periodic_firing(self):
        engine = Engine()
        times = []
        engine.every(10.0, lambda: times.append(engine.now))
        engine.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_initial_delay_overrides_first_firing(self):
        engine = Engine()
        times = []
        engine.every(10.0, lambda: times.append(engine.now), initial_delay=1.0)
        engine.run_until(25.0)
        assert times == [1.0, 11.0, 21.0]

    def test_cancel_stops_firing(self):
        engine = Engine()
        times = []
        timer = engine.every(10.0, lambda: times.append(engine.now))
        engine.run_until(25.0)
        timer.cancel()
        engine.run_until(100.0)
        assert times == [10.0, 20.0]
        assert not timer.active

    def test_pause_and_resume(self):
        engine = Engine()
        times = []
        timer = engine.every(10.0, lambda: times.append(engine.now))
        engine.run_until(15.0)
        timer.pause()
        engine.run_until(50.0)
        assert times == [10.0]
        timer.resume()
        engine.run_until(65.0)
        assert times == [10.0, 60.0]

    def test_pause_before_first_fire_cancels_it(self):
        # ``every`` arms the first firing through the same path as every
        # later one, so pausing immediately must suppress it too.
        engine = Engine()
        times = []
        timer = engine.every(10.0, lambda: times.append(engine.now))
        timer.pause()
        engine.run_until(50.0)
        assert times == []
        timer.resume()
        engine.run_until(65.0)
        assert times == [60.0]

    def test_resume_discards_paused_phase(self):
        engine = Engine()
        times = []
        timer = engine.every(10.0, lambda: times.append(engine.now))
        engine.run_until(12.0)
        timer.pause()
        engine.run_until(13.0)
        timer.resume()  # next firing one full interval from t=13
        engine.run_until(30.0)
        assert times == [10.0, 23.0]

    def test_resume_unpaused_timer_is_noop(self):
        engine = Engine()
        timer = engine.every(10.0, lambda: None)
        timer.resume()
        engine.run_until(15.0)
        assert timer.fire_count == 1

    def test_resume_cancelled_timer_rejected(self):
        engine = Engine()
        timer = engine.every(10.0, lambda: None)
        timer.cancel()
        with pytest.raises(SimulationError):
            timer.resume()

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError):
            Engine().every(0.0, lambda: None)

    def test_callback_exception_does_not_kill_timer(self):
        engine = Engine()
        fires = []

        def flaky():
            fires.append(engine.now)
            if len(fires) == 1:
                raise RuntimeError("transient")

        engine.every(10.0, flaky)
        with pytest.raises(RuntimeError):
            engine.run_until(10.0)
        # Timer re-armed itself before the callback ran.
        engine.run_until(25.0)
        assert fires == [10.0, 20.0]

    def test_fire_count_tracks_firings(self):
        engine = Engine()
        timer = engine.every(5.0, lambda: None)
        engine.run_until(22.0)
        assert timer.fire_count == 4


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a, b = Engine(seed=42), Engine(seed=42)
        draws_a = [a.rng.random() for _ in range(10)]
        draws_b = [b.rng.random() for _ in range(10)]
        assert draws_a == draws_b

    def test_different_seed_different_draws(self):
        a, b = Engine(seed=1), Engine(seed=2)
        assert [a.rng.random() for _ in range(10)] != [
            b.rng.random() for _ in range(10)
        ]


class TestDrainUntil:
    """The round-barrier primitive: strictly-below semantics."""

    def test_event_below_barrier_fires(self):
        engine = Engine()
        seen = []
        engine.call_in(4.9, lambda: seen.append(engine.now))
        assert engine.drain_until(5.0) == 1
        assert seen == [4.9]
        assert engine.now == 5.0

    def test_event_exactly_at_barrier_does_not_fire(self):
        engine = Engine()
        seen = []
        engine.call_in(5.0, lambda: seen.append(engine.now))
        assert engine.drain_until(5.0) == 0
        assert seen == []
        # The clock still lands exactly on the barrier...
        assert engine.now == 5.0
        # ...and the held event fires first thing next round, at the
        # barrier timestamp (not later).
        assert engine.drain_until(10.0) == 1
        assert seen == [5.0]

    def test_tie_between_barrier_and_earlier_event(self):
        engine = Engine()
        seen = []
        engine.call_in(3.0, lambda: seen.append(("below", engine.now)))
        engine.call_in(5.0, lambda: seen.append(("at", engine.now)))
        engine.call_in(7.0, lambda: seen.append(("above", engine.now)))
        assert engine.drain_until(5.0) == 1
        assert seen == [("below", 3.0)]
        assert engine.drain_until(7.0) == 1
        assert seen == [("below", 3.0), ("at", 5.0)]
        # run_until is inclusive, so the two primitives differ exactly
        # at the boundary timestamp.
        engine.run_until(7.0)
        assert seen == [("below", 3.0), ("at", 5.0), ("above", 7.0)]

    def test_periodic_timer_held_at_barrier(self):
        engine = Engine()
        fires = []
        engine.every(5.0, lambda: fires.append(engine.now))
        assert engine.drain_until(10.0) == 1   # 5.0 fired, 10.0 held
        assert fires == [5.0]
        assert engine.drain_until(20.0) == 2   # 10.0 (held), 15.0
        assert fires == [5.0, 10.0, 15.0]

    def test_returns_count_of_delivered_events(self):
        engine = Engine()
        for delay in (1.0, 2.0, 3.0, 4.0):
            engine.call_in(delay, lambda: None)
        assert engine.drain_until(3.5) == 3
        assert engine.drain_until(3.5) == 0
        assert engine.drain_until(10.0) == 1

    def test_past_barrier_rejected(self):
        engine = Engine()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            engine.drain_until(5.0)

    def test_reentrant_drain_rejected(self):
        engine = Engine()

        def reenter():
            engine.drain_until(20.0)

        engine.call_in(1.0, reenter)
        with pytest.raises(SimulationError):
            engine.drain_until(10.0)

    def test_back_to_back_rounds_tile_time(self):
        engine = Engine()
        fires = []
        engine.every(3.0, lambda: fires.append(engine.now))
        total = 0
        for barrier in (5.0, 10.0, 15.0):
            total += engine.drain_until(barrier)
            assert engine.now == barrier
        # Firings at 3, 6, 9, 12 delivered; nothing lost at the seams.
        assert fires == [3.0, 6.0, 9.0, 12.0]
        assert total == 4
