"""Tests for the reporting helpers."""

import pytest

from repro.analysis import Table, format_cdf, format_series


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["name", "value"])
        table.add_row("cpu", 1.5)
        table.add_row("memory_gb", 26)
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "memory_gb" in lines[3]
        # All rows share the same width.
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_wrong_cell_count_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row(1.23456)
        assert "1.235" in table.render()


def test_format_series_converts_time():
    text = format_series("lag", [(3600.0, 1.0), (7200.0, 2.0)], time_unit="h")
    lines = text.splitlines()
    assert "series: lag" in lines[0]
    assert lines[1].strip().startswith("1.000")
    assert lines[2].strip().startswith("2.000")


def test_format_cdf_downsamples():
    values = list(range(1000))
    text = format_cdf("cpu", values, points=10)
    lines = text.splitlines()
    assert 10 <= len(lines) - 1 <= 13
    assert lines[-1].endswith("1.0000")


def test_format_cdf_empty():
    assert "empty" in format_cdf("x", [])
