"""Tests for the Data Warehouse substrate."""

import pytest

from repro.warehouse import DataWarehouse, WarehouseTable
from repro.warehouse.tables import WarehouseError


class TestWarehouseTable:
    def test_partitions_land_and_query(self):
        table = WarehouseTable("clicks")
        table.add_partition(0, 100.0)
        table.add_partition(1, 150.0)
        assert table.days() == [0, 1]
        assert table.size_mb(0) == 100.0
        assert table.size_mb(99) == 0.0

    def test_size_between_inclusive(self):
        table = WarehouseTable("clicks")
        for day in range(5):
            table.add_partition(day, 10.0)
        assert table.size_between(1, 3) == 30.0
        assert table.size_between(0, 4) == 50.0

    def test_bad_range_rejected(self):
        table = WarehouseTable("clicks")
        with pytest.raises(WarehouseError):
            table.size_between(3, 1)

    def test_overwrite_is_idempotent(self):
        table = WarehouseTable("clicks")
        table.add_partition(0, 100.0)
        table.add_partition(0, 120.0)
        assert table.size_mb(0) == 120.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WarehouseError):
            WarehouseTable("")
        table = WarehouseTable("x")
        with pytest.raises(WarehouseError):
            table.add_partition(0, -1.0)


class TestDataWarehouse:
    def test_ensure_and_get(self):
        warehouse = DataWarehouse()
        table = warehouse.ensure_table("clicks")
        assert warehouse.get_table("clicks") is table
        assert warehouse.ensure_table("clicks") is table

    def test_unknown_table_rejected(self):
        with pytest.raises(WarehouseError):
            DataWarehouse().get_table("nope")

    def test_land_daily(self):
        warehouse = DataWarehouse()
        table = warehouse.land_daily("clicks", [10.0, 20.0, 30.0], first_day=5)
        assert table.days() == [5, 6, 7]
        assert table.size_between(5, 7) == 60.0
