"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_experiments_lists_benches(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "test_fig8_backlog_recovery.py" in out
    assert "pytest benchmarks/" in out


def test_growth_prints_table(capsys):
    assert main(["growth", "--jobs", "50"]) == 0
    out = capsys.readouterr().out
    assert "month" in out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) >= 14  # header + 13 months


def test_footprints_prints_cdfs(capsys):
    assert main(["footprints", "--jobs", "200"]) == 0
    out = capsys.readouterr().out
    assert "task CPU (cores)" in out
    assert "tasks < 1 core" in out


def test_demo_runs_and_reports(capsys):
    assert main(["demo", "--minutes", "5", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "jobs managed" in out
    assert "tasks not running" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
