"""Tests for the ``python -m repro`` command-line interface."""

import json
from pathlib import Path

import pytest

import repro.__main__
from repro.__main__ import main


def test_experiments_lists_benches(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "test_fig8_backlog_recovery.py" in out
    assert "pytest benchmarks/" in out


def test_experiments_index_is_derived_from_benchmarks_dir(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    # Regression: the old hardcoded list omitted the stateful ablation.
    assert "test_ablation_stateful.py" in out
    bench_dir = Path(repro.__main__.__file__).resolve().parents[2] / "benchmarks"
    for path in sorted(bench_dir.glob("test_*.py")):
        assert path.name in out


def test_growth_prints_table(capsys):
    assert main(["growth", "--jobs", "50"]) == 0
    out = capsys.readouterr().out
    assert "month" in out
    lines = [line for line in out.splitlines() if line.strip()]
    assert len(lines) >= 14  # header + 13 months


def test_footprints_prints_cdfs(capsys):
    assert main(["footprints", "--jobs", "200"]) == 0
    out = capsys.readouterr().out
    assert "task CPU (cores)" in out
    assert "tasks < 1 core" in out


def test_demo_runs_and_reports(capsys):
    assert main(["demo", "--minutes", "5", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "jobs managed" in out
    assert "tasks not running" in out


def test_demo_trace_out_writes_jsonl(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert main(
        ["demo", "--minutes", "5", "--jobs", "2",
         "--trace-out", str(trace_path)]
    ) == 0
    out = capsys.readouterr().out
    assert str(trace_path) in out
    lines = trace_path.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert first["trace"].startswith("T")
    assert "source" in first and "kind" in first


def test_demo_telemetry_out_writes_jsonl(capsys, tmp_path):
    telemetry_path = tmp_path / "telemetry.jsonl"
    assert main(
        ["demo", "--minutes", "5", "--jobs", "2",
         "--telemetry-out", str(telemetry_path)]
    ) == 0
    lines = telemetry_path.read_text().splitlines()
    names = {json.loads(line)["name"] for line in lines}
    assert "syncer.rounds" in names
    assert "engine.events" in names


def test_timeline_command_prints_story(capsys):
    assert main(["timeline", "--minutes", "25"]) == 0
    out = capsys.readouterr().out
    assert "state-syncer" in out
    assert "quarantine" in out
    assert "failover" in out


def test_timeline_filters_narrow_output(capsys):
    assert main(
        ["timeline", "--minutes", "25", "--source", "shard-manager",
         "--kind", "failover"]
    ) == 0
    out = capsys.readouterr().out
    body = [
        line for line in out.splitlines()
        if line.strip() and not line.startswith(("t (s)", "-"))
    ]
    assert body
    assert all("shard-manager" in line for line in body)


def test_timeline_kind_filter_matches_substring(capsys):
    assert main(
        ["timeline", "--minutes", "25", "--kind", "quarantine"]
    ) == 0
    out = capsys.readouterr().out
    body = [
        line for line in out.splitlines()
        if line.strip() and not line.startswith(("t (s)", "-"))
    ]
    assert body
    assert all("quarantine" in line for line in body)


def test_timeline_source_filter_is_exact(capsys):
    # "slo" must not match "state-syncer" or any other source by substring.
    assert main(
        ["timeline", "--minutes", "40", "--source", "slo"]
    ) == 0
    out = capsys.readouterr().out
    body = [
        line for line in out.splitlines()
        if line.strip() and not line.startswith(("t (s)", "-"))
    ]
    assert body, "the 40-minute incident must raise burn-rate alerts"
    assert all(line.split()[1] == "slo" for line in body)


def test_timeline_window_bounds_respected(capsys):
    assert main(
        ["timeline", "--minutes", "25", "--since", "600", "--until", "1200"]
    ) == 0
    out = capsys.readouterr().out
    times = [
        float(line.split()[0])
        for line in out.splitlines()
        if line.strip() and not line.startswith(("t (s)", "-"))
    ]
    assert times
    assert all(600.0 <= t <= 1200.0 for t in times)


def test_trace_command_prints_causal_chain(capsys):
    assert main(["trace", "demo/job-1", "--minutes", "25"]) == 0
    out = capsys.readouterr().out
    assert "job-store" in out
    assert "job-quarantined" in out


def test_trace_command_reads_exported_file(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert main(
        ["demo", "--minutes", "20", "--jobs", "2",
         "--trace-out", str(trace_path)]
    ) == 0
    capsys.readouterr()
    assert main(["trace", "demo/job-0", "--input", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "trace T" in out


def test_trace_unknown_job_reports_empty(capsys):
    assert main(["trace", "no/such-job", "--minutes", "10"]) == 0
    out = capsys.readouterr().out
    assert "no trace events" in out


def test_trace_critical_path_reports_layer_costs(capsys):
    assert main(
        ["trace", "demo/job-0", "--minutes", "25", "--critical-path"]
    ) == 0
    out = capsys.readouterr().out
    assert "slowest causal chain for demo/job-0" in out
    assert "end to end" in out
    assert "layer costs" in out
    assert "->" in out  # at least one layer edge row


def test_trace_critical_path_reads_exported_file(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert main(
        ["demo", "--minutes", "20", "--jobs", "2",
         "--trace-out", str(trace_path)]
    ) == 0
    capsys.readouterr()
    assert main(
        ["trace", "demo/job-0", "--input", str(trace_path),
         "--critical-path"]
    ) == 0
    out = capsys.readouterr().out
    assert "slowest causal chain" in out


def test_slo_command_prints_compliance_table(capsys):
    assert main(["slo", "--minutes", "25"]) == 0
    out = capsys.readouterr().out
    assert "fleet SLO compliance" in out
    assert "budget burned" in out
    assert "demo/job-0" in out
    assert "breach windows:" in out


def test_slo_report_out_writes_deterministic_json(capsys, tmp_path):
    first = tmp_path / "slo-a.json"
    second = tmp_path / "slo-b.json"
    assert main(["slo", "--minutes", "25",
                 "--report-out", str(first)]) == 0
    assert main(["slo", "--minutes", "25",
                 "--report-out", str(second)]) == 0
    assert first.read_bytes() == second.read_bytes()
    report = json.loads(first.read_text())
    assert report["slos"]
    row = report["slos"][0]
    assert {"job", "slo", "target", "budget_burned",
            "burn_1h", "status"} <= set(row)


def test_slo_prom_out_writes_exposition(capsys, tmp_path):
    prom_path = tmp_path / "metrics.prom"
    assert main(["slo", "--minutes", "25",
                 "--prom-out", str(prom_path)]) == 0
    text = prom_path.read_text()
    assert "# TYPE repro_slo_budget_burned gauge" in text
    assert 'repro_slo_budget_burned{job="demo/job-0",slo="lag"}' in text


def test_chaos_list_enumerates_scenarios(capsys):
    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("job-store-outage", "syncer-crash", "shard-manager-outage",
                 "task-service-staleness", "metric-gap",
                 "scribe-partition-loss", "checkpoint-restore-vs-cold-restart",
                 "standby-takeover", "gray-node-drain"):
        assert name in out


def test_chaos_list_renders_fault_kinds_and_mttr_bound(capsys):
    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    # Each entry shows its fault kinds in brackets and its expected MTTR
    # bound (or says it has none) next to the name.
    assert "[host-failure] (mttr<=5s)" in out
    assert "[checkpoint-wipe] (mttr<=90s)" in out
    assert "[slow-node] (mttr<=60s)" in out
    assert "no mttr bound" in out


def test_chaos_control_arm_disables_resiliency_features(capsys):
    # The control arm of the takeover drill pays the full reboot clock
    # but still converges well inside a generous bound.
    assert main(["chaos", "standby-takeover", "--seed", "7",
                 "--control", "--max-mttr", "120"]) == 0
    out = capsys.readouterr().out
    assert "converged: yes" in out
    # And the feature arm must beat its own 5 s acceptance bound.
    assert main(["chaos", "standby-takeover", "--seed", "7",
                 "--max-mttr", "5"]) == 0


def test_chaos_runs_scenario_and_reports_mttr(capsys):
    assert main(["chaos", "job-store-outage", "--seed", "7",
                 "--max-mttr", "180"]) == 0
    out = capsys.readouterr().out
    assert "mttr (s)" in out
    assert "converged: yes" in out


def test_chaos_max_mttr_bound_fails_when_exceeded(capsys):
    assert main(["chaos", "job-store-outage", "--seed", "7",
                 "--max-mttr", "1"]) == 1
    err = capsys.readouterr().err
    assert "exceeds" in err


def test_chaos_unknown_scenario_errors(capsys):
    assert main(["chaos", "not-a-scenario"]) == 2
    assert "unknown chaos scenario" in capsys.readouterr().err


def test_chaos_exports_timeline_and_telemetry(capsys, tmp_path):
    timeline_path = tmp_path / "timeline.txt"
    telemetry_path = tmp_path / "telemetry.jsonl"
    assert main(["chaos", "metric-gap", "--seed", "3",
                 "--timeline-out", str(timeline_path),
                 "--telemetry-out", str(telemetry_path)]) == 0
    assert "chaos" in timeline_path.read_text()
    lines = telemetry_path.read_text().splitlines()
    assert lines
    assert any("chaos.faults_injected" in json.loads(line).get("name", "")
               for line in lines)


def test_chaos_exports_slo_report(capsys, tmp_path):
    slo_path = tmp_path / "slo.json"
    assert main(["chaos", "metric-gap", "--seed", "3",
                 "--slo-out", str(slo_path)]) == 0
    out = capsys.readouterr().out
    assert "slo impact:" in out
    report = json.loads(slo_path.read_text())
    assert "slos" in report and "breach_windows" in report
    assert report["slos"], "chaos platform must track default SLOs"


def test_chaos_mttr_table_renders():
    from repro.chaos import mttr_table

    text = mttr_table(["metric-gap"], [0, 1])
    assert "metric-gap" in text
    assert "seed 0" in text and "seed 1" in text
    assert "0.0" in text


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
