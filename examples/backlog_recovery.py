#!/usr/bin/env python
"""Backlog recovery with and without the Auto Scaler (the Fig. 8 story).

A tailer job is disabled while its input keeps flowing, building up a large
backlog. When it is re-enabled:

* in the cluster **with** the Auto Scaler, the scaler sizes the job from
  its resource estimates (equation 3) up to the 32-task default limit;
  after the operator lifts the limit it scales further and the backlog
  drains fast;
* in the cluster **without** it, the job keeps its original parallelism
  and takes several times longer.

Run with:  python examples/backlog_recovery.py
"""

from repro import ConfigLevel, JobSpec, PlatformConfig, SLO, Turbine
from repro.scaler import AutoScalerConfig
from repro.workloads import TrafficDriver

INPUT_RATE_MB = 12.0
BACKLOG_HOURS = 3.0


def build_cluster(with_scaler: bool) -> Turbine:
    platform = Turbine.create(
        num_hosts=6, seed=13,
        config=PlatformConfig(num_shards=128, containers_per_host=4),
    )
    if with_scaler:
        platform.attach_scaler(AutoScalerConfig(interval=120.0))
    platform.start()
    platform.provision(
        JobSpec(
            job_id="scuba/backlogged_table",
            input_category="backlogged_table",
            task_count=4,
            rate_per_thread_mb=2.0,
            task_count_limit=32,
            slo=SLO(max_lag_seconds=90.0, recovery_seconds=1800.0),
        ),
        partitions=128,
    )
    return platform


def run_recovery(with_scaler: bool) -> float:
    platform = build_cluster(with_scaler)
    label = "with auto scaler   " if with_scaler else "without auto scaler"

    # Build the backlog: the job is stopped (application bug) while input
    # keeps arriving.
    platform.actuator.stop_tasks("scuba/backlogged_table")
    platform.scribe.get_category("backlogged_table").append(
        INPUT_RATE_MB * BACKLOG_HOURS * 3600.0
    )
    backlog = platform.job_lag_mb("scuba/backlogged_table")

    # Re-enable: force a resync so the State Syncer restarts the tasks.
    platform.job_store.commit_running("scuba/backlogged_table", {})
    driver = TrafficDriver(platform.engine, platform.scribe)
    driver.add_source("backlogged_table", lambda t: INPUT_RATE_MB)
    driver.start()

    start = platform.now
    lifted = False
    while platform.job_lag_mb("scuba/backlogged_table") > 60.0:
        platform.run_for(minutes=10)
        config = platform.job_service.expected_config("scuba/backlogged_table")
        # The operator lifts the 32-task limit once the scaler pins it.
        if with_scaler and not lifted and config["task_count"] >= 32:
            platform.job_service.patch(
                "scuba/backlogged_table", ConfigLevel.ONCALL,
                {"task_count_limit": 128},
            )
            lifted = True
            print(f"  [{label}] operator lifted the task-count limit at "
                  f"t+{(platform.now - start) / 60:.0f} min")
        if platform.now - start > 86400.0:
            break
    elapsed_hours = (platform.now - start) / 3600.0
    final_tasks = platform.job_service.expected_config(
        "scuba/backlogged_table"
    )["task_count"]
    print(f"  [{label}] backlog {backlog / 1000:.1f} GB drained in "
          f"{elapsed_hours:.1f} h (final task count {final_tasks})")
    return elapsed_hours


def main() -> None:
    print(f"backlog: {BACKLOG_HOURS:.0f} h of {INPUT_RATE_MB:.0f} MB/s input\n")
    fast = run_recovery(with_scaler=True)
    slow = run_recovery(with_scaler=False)
    print(f"\nspeedup with auto scaler: {slow / fast:.1f}x "
          f"(paper reports ~8x for the Fig. 8 incident)")


if __name__ == "__main__":
    main()
