#!/usr/bin/env python
"""Operations tour: health reporting, incident timeline, root-causing.

Walks through the operational tooling of section VII on a live cluster:
a host failure, an OOM-looping job, and a wedged task — with the health
reporter paging, the incident timeline telling the story in order, and
the auto root-causer classifying what the scaler could not.

Run with:  python examples/operations_tour.py
"""

from repro import JobSpec, PlatformConfig, ResourceVector, Turbine
from repro.cluster import FailurePlan
from repro.ops import IncidentTimeline
from repro.scaler.rootcause import RootCauseAnalyzer
from repro.workloads import TrafficDriver


def main() -> None:
    platform = Turbine.create(
        num_hosts=4, seed=5,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.attach_scaler()
    platform.attach_health_reporter(interval=120.0)
    platform.start()

    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(5):
        platform.provision(
            JobSpec(job_id=f"svc/job-{index}", input_category=f"cat-{index}",
                    task_count=4, rate_per_thread_mb=4.0),
        )
        driver.add_source(f"cat-{index}", lambda t: 6.0)
    driver.start()
    analyzer = RootCauseAnalyzer(
        platform.job_service, platform.shard_manager, platform.metrics
    )
    platform.run_for(minutes=10)
    analyzer.observe_configs(platform.now)
    print("steady state:")
    print(platform.health.check_once().render())

    # Incident 1: a host dies.
    platform.failures.schedule(FailurePlan("host-1", fail_at=platform.now + 60))
    # Incident 2: a deploy shrinks job-2's memory; it OOM-loops.
    from repro.jobs import ConfigLevel

    platform.job_service.patch(
        "svc/job-2", ConfigLevel.PROVISIONER,
        {"resources": {"cpu": 1.0, "memory_gb": 0.41},
         "package": {"name": "stream_engine", "version": "2.0-tight"}},
    )
    platform.run_for(minutes=30)

    # Incident 3: one task of job-4 wedges (simulated hardware fault) —
    # recently enough that the routine rebalance has not yet moved it.
    for manager in platform.task_managers.values():
        for task in manager.tasks.values():
            if task.spec.job_id == "svc/job-4":
                task.stop()
                break
        else:
            continue
        break
    platform.run_for(minutes=5)

    print("\nafter the incidents:")
    print(platform.health.check_once().render())

    print("\nincident timeline (last 30 min):")
    timeline = IncidentTimeline(platform)
    for event in timeline.events(since=platform.now - 1800.0)[:20]:
        print(f"  {event}")

    print("\nroot-cause analysis of job-4 (the wedged task):")
    analyzer.observe_configs(platform.now)
    diagnosis = analyzer.diagnose("svc/job-4", platform.now)
    print(f"  cause     : {diagnosis.cause.value}")
    print(f"  evidence  : {diagnosis.evidence}")
    if analyzer.mitigate(diagnosis):
        print(f"  mitigation: {diagnosis.mitigation}")
    platform.run_for(minutes=5)
    print(f"  job-4 tasks running again: "
          f"{len(platform.tasks_of_job('svc/job-4'))}/4")


if __name__ == "__main__":
    main()
