#!/usr/bin/env python
"""A disaster-recovery storm drill (the Fig. 9 story).

A cluster of jobs runs a normal diurnal day; on the second day a "storm"
disconnects a sibling datacenter and this cluster absorbs ~16 % extra
traffic. The Auto Scaler reacts — vertical scaling first, then task-count
growth — and the task count returns to normal after the storm.

Run with:  python examples/storm_drill.py
"""

from repro import JobSpec, PlatformConfig, Turbine
from repro.scaler import AutoScalerConfig
from repro.workloads import DiurnalPattern, StormSchedule, TrafficDriver

NUM_JOBS = 20
DAY = 86400.0


def main() -> None:
    platform = Turbine.create(
        num_hosts=8, seed=3,
        config=PlatformConfig(
            num_shards=128, containers_per_host=4, step_interval=60.0,
        ),
    )
    platform.attach_scaler(
        AutoScalerConfig(interval=300.0, downscale_after=7200.0)
    )
    platform.start()

    driver = TrafficDriver(platform.engine, platform.scribe, tick=120.0)
    storm_start, storm_end = 1.25 * DAY, 1.75 * DAY
    for index in range(NUM_JOBS):
        base = 2.0 + (index % 5)
        pattern = DiurnalPattern(
            base, amplitude=0.25,
            rng=platform.engine.rng.fork(f"job-{index}"),
        )
        storm = StormSchedule(pattern, storm_start, storm_end, surge=0.16)
        # Jobs already run at the vertical (threads) limit, so the storm's
        # extra traffic forces horizontal scaling — the Fig. 9 situation.
        platform.provision(
            JobSpec(job_id=f"job-{index:02d}", input_category=f"cat-{index:02d}",
                    task_count=3, threads_per_task=2,
                    rate_per_thread_mb=2.0, task_count_limit=64),
        )
        driver.add_source(f"cat-{index:02d}", storm)
    driver.start()

    samples = []  # (hours, traffic MB/s, total expected task count)
    horizon = 2.0 * DAY
    while platform.now < horizon:
        platform.run_for(hours=2)
        traffic = sum(
            platform.metrics.latest(f"job-{i:02d}", "input_rate_mb") or 0.0
            for i in range(NUM_JOBS)
        )
        tasks = sum(
            platform.job_service.expected_config(f"job-{i:02d}")["task_count"]
            for i in range(NUM_JOBS)
        )
        in_storm = storm_start <= platform.now < storm_end
        samples.append((platform.now / 3600.0, traffic, tasks, in_storm))

    print("hour   traffic(MB/s)  tasks  storm")
    for hours, traffic, tasks, in_storm in samples:
        marker = " <== storm" if in_storm else ""
        print(f"{hours:5.1f}  {traffic:12.1f}  {tasks:5d}{marker}")

    normal_peak = max(t for h, t, n, s in samples if not s)
    storm_peak = max(t for h, t, n, s in samples if s)
    # Baseline parallelism: the settled count just before the storm hits.
    normal_tasks = [n for h, t, n, s in samples if not s and h <= 30][-1]
    storm_tasks = max(n for h, t, n, s in samples if s)
    print(f"\ntraffic increase at peak : "
          f"{(storm_peak / normal_peak - 1):.1%} (paper: ~16%)")
    print(f"task count increase      : "
          f"{(storm_tasks / normal_tasks - 1):.1%} (paper: ~8%)")

    in_slo = sum(
        1 for i in range(NUM_JOBS)
        if (platform.metrics.latest(f"job-{i:02d}", "time_lagged") or 0.0) < 90.0
    )
    print(f"jobs within SLO          : {in_slo}/{NUM_JOBS} (paper: ~99.9%)")


if __name__ == "__main__":
    main()
