#!/usr/bin/env python
"""Quickstart: provision a streaming job on Turbine and watch it run.

Demonstrates the core loop of the platform:

1. build a simulated cluster and start all Turbine services;
2. provision a job (what to run);
3. feed traffic into its Scribe category;
4. watch the Task Management layer schedule tasks and the data plane
   process bytes;
5. apply an oncall override and see the hierarchical configuration
   precedence in action.

Run with:  python examples/quickstart.py
"""

from repro import ConfigLevel, JobSpec, PlatformConfig, Turbine
from repro.workloads import TrafficDriver


def main() -> None:
    # A small deployment: 3 hosts, 2 Turbine containers each.
    platform = Turbine.create(
        num_hosts=3, seed=42,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.start()

    # What to run: a stateless filtering job with 4 parallel tasks reading
    # the "click_stream" category. Each task thread can process 2 MB/s.
    platform.provision(
        JobSpec(
            job_id="demo/click_filter",
            input_category="click_stream",
            task_count=4,
            rate_per_thread_mb=2.0,
        )
    )

    # Feed 5 MB/s of traffic.
    driver = TrafficDriver(platform.engine, platform.scribe)
    driver.add_source("click_stream", lambda t: 5.0)
    driver.start()

    # End-to-end scheduling is 1-2 minutes (State Syncer round + Task
    # Service cache + Task Manager refresh), exactly like the paper.
    platform.run_for(minutes=3)
    print(f"tasks running after 3 min : {platform.tasks_of_job('demo/click_filter')}")

    platform.run_for(minutes=30)
    print(f"input appended so far     : {driver.total_appended_mb():8.1f} MB")
    print(f"unprocessed backlog       : {platform.job_lag_mb('demo/click_filter'):8.1f} MB")
    print(f"time_lagged metric        : "
          f"{platform.metrics.latest('demo/click_filter', 'time_lagged'):8.2f} s")

    # An oncall override: bump parallelism through the highest-precedence
    # configuration level. The State Syncer performs the multi-phase
    # complex synchronization (stop → redistribute checkpoints → start).
    platform.job_service.patch(
        "demo/click_filter", ConfigLevel.ONCALL, {"task_count": 8}
    )
    platform.run_for(minutes=4)
    print(f"tasks after oncall bump   : "
          f"{len(platform.tasks_of_job('demo/click_filter'))} (expected 8)")

    # Lifting the override falls back to the provisioner's value.
    platform.job_service.clear_level("demo/click_filter", ConfigLevel.ONCALL)
    platform.run_for(minutes=4)
    print(f"tasks after override lift : "
          f"{len(platform.tasks_of_job('demo/click_filter'))} (expected 4)")


if __name__ == "__main__":
    main()
