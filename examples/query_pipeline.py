#!/usr/bin/env python
"""A declarative query provisioned as a multi-job pipeline (paper Fig. 2).

Builds the full upstream path the paper describes: a declarative query is
validated, compiled to an IR, optimized (watch the filter slide below the
shuffle), cut at shuffle boundaries into stages, and provisioned as
Turbine jobs connected through Scribe categories.

Run with:  python examples/query_pipeline.py
"""

from repro import PlatformConfig, Turbine
from repro.provision import (
    Aggregate,
    Field,
    Filter,
    ProvisionService,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
    compile_query,
    optimize,
)
from repro.workloads import TrafficDriver

CLICKS = Schema.of(
    Field("user_id", "int"),
    Field("url", "string"),
    Field("is_valid", "bool"),
    Field("bytes", "float"),
)


def main() -> None:
    # Declarative query: count valid clicks per user.
    source = Source("clicks", CLICKS, rate_mb=8.0)
    shuffled = Shuffle(source, key="user_id")
    cleaned = Filter(shuffled, "is_valid", selectivity=0.6)
    counted = Aggregate(cleaned, group_by="user_id",
                        aggregates=("count", "sum:bytes"),
                        key_cardinality=3_000_000)
    query = Query("clicks_per_user", Sink(counted, "user_counts"))

    print(f"output schema   : {query.validate().names()}")

    unoptimized = compile_query(query)
    print("before optimize :",
          [n.kind for n in unoptimized.topological()])
    optimized = optimize(compile_query(query))
    print("after optimize  :",
          [n.kind for n in optimized.topological()],
          "(filter pushed below the shuffle)")

    # Provision onto a simulated cluster.
    platform = Turbine.create(
        num_hosts=4, seed=11,
        config=PlatformConfig(num_shards=64, containers_per_host=2),
    )
    platform.start()
    pipeline = ProvisionService().provision(query, platform)
    print(f"\nstages          : {pipeline.num_jobs}")
    for spec, stage in zip(pipeline.job_specs, pipeline.stages):
        kind = "stateful" if spec.stateful else "stateless"
        print(f"  {spec.job_id}: {kind}, {spec.task_count} tasks, "
              f"reads {stage.input_category!r} -> {stage.output_category!r}")

    # Drive traffic into the source category and run.
    driver = TrafficDriver(platform.engine, platform.scribe)
    driver.add_source("clicks", lambda t: 8.0)
    driver.start()
    platform.run_for(minutes=10)
    for spec in pipeline.job_specs:
        print(f"  {spec.job_id}: {len(platform.tasks_of_job(spec.job_id))} "
              f"tasks running")

    # The same query in batch mode: a 7-day backfill over the warehouse
    # ("the batch mode is useful when processing historical data").
    from repro.provision.batch import BatchRunner
    from repro.warehouse import DataWarehouse

    warehouse = DataWarehouse()
    warehouse.land_daily("clicks", [650.0] * 7)  # ~8 MB/s days
    backfill = BatchRunner(warehouse).run(query, first_day=0, last_day=6,
                                          workers=16)
    print(f"\nbackfill        : {backfill.total_input_mb:.0f} MB over "
          f"{len(backfill.stages)} stages in "
          f"{backfill.total_duration_seconds / 60:.1f} min with 16 workers")


if __name__ == "__main__":
    main()
