#!/usr/bin/env python
"""A Scuba Tailer fleet: hundreds of jobs, load-balanced across a cluster.

Reproduces the flavour of the paper's section VI-A at laptop scale: a fleet
of tailer jobs whose footprints follow the published Fig. 5 distributions,
packed onto Turbine containers by the shard balancer, with per-host
utilization staying inside a tight band.

Run with:  python examples/scuba_tailer_fleet.py
"""

from repro import PlatformConfig, Turbine
from repro.analysis import Table
from repro.metrics.aggregate import fraction_below, percentile
from repro.workloads import ScubaFleet, TrafficDriver


def main() -> None:
    platform = Turbine.create(
        num_hosts=8, seed=7,
        config=PlatformConfig(
            num_shards=256, containers_per_host=4, step_interval=30.0,
        ),
    )
    platform.start()

    fleet = ScubaFleet(num_jobs=200, seed=7)
    driver = TrafficDriver(platform.engine, platform.scribe)
    for profile, spec in zip(fleet.profiles, fleet.job_specs()):
        platform.provision(spec)
        driver.add_source(
            spec.input_category, lambda t, r=profile.base_rate_mb: r
        )
    driver.start()

    print(f"fleet: {fleet.num_jobs} jobs, {fleet.total_tasks()} tasks, "
          f"{fleet.total_rate_mb():.1f} MB/s total traffic")

    platform.run_for(hours=1)

    # Fig. 5-style footprint summary.
    cpus, memories = fleet.task_footprints()
    print(f"\ntasks under 1 CPU core    : {fraction_below(cpus, 1.0):6.1%}"
          f"  (paper: >80%)")
    print(f"tasks under 2 GB memory   : {fraction_below(memories, 2.0):6.1%}"
          f"  (paper: >99%)")
    print(f"minimum task memory       : {min(memories):6.3f} GB"
          f"  (paper: ~0.4 GB floor)")

    # Fig. 6-style balance summary: per-host utilization spread.
    usage = platform.host_utilization()
    cpu_utils = [entry["cpu_util"] for entry in usage.values()]
    tasks_per_host = [entry["tasks"] for entry in usage.values()]
    table = Table(["metric", "p5", "p50", "p95"])
    table.add_row("host cpu utilization",
                  percentile(cpu_utils, 5), percentile(cpu_utils, 50),
                  percentile(cpu_utils, 95))
    table.add_row("tasks per host",
                  percentile(tasks_per_host, 5), percentile(tasks_per_host, 50),
                  percentile(tasks_per_host, 95))
    print("\n" + table.render())

    total_running = platform.running_task_count()
    print(f"\nrunning tasks             : {total_running} / {fleet.total_tasks()}")


if __name__ == "__main__":
    main()
