#!/usr/bin/env python
"""Degraded-mode tour: kill each Turbine component, data keeps flowing.

The architecture decouples what to run (Job Management), where to run
(Task Management), and how to run (Resource Management) so that "in case of
individual Turbine component failures ... stream processing tasks continue
to run and process data" (paper section II). This example disables one
component at a time and verifies processing continues.

Run with:  python examples/degraded_modes.py
"""

from repro import JobSpec, PlatformConfig, Turbine
from repro.workloads import TrafficDriver


def processed_delta(platform, minutes: float) -> float:
    """MB processed by the job over the next ``minutes``."""
    before = platform.job_lag_mb("demo/job")
    head_before = platform.scribe.get_category("demo").total_head()
    platform.run_for(minutes=minutes)
    head_after = platform.scribe.get_category("demo").total_head()
    after = platform.job_lag_mb("demo/job")
    return (head_after - head_before) - (after - before)


def main() -> None:
    platform = Turbine.create(
        num_hosts=3, seed=17,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.attach_scaler()
    platform.start()
    platform.provision(
        JobSpec(job_id="demo/job", input_category="demo", task_count=4,
                rate_per_thread_mb=4.0),
    )
    driver = TrafficDriver(platform.engine, platform.scribe)
    driver.add_source("demo", lambda t: 6.0)
    driver.start()
    platform.run_for(minutes=5)

    print("baseline (all components up):")
    print(f"  processed {processed_delta(platform, 10):7.1f} MB in 10 min\n")

    print("State Syncer down (Job Management degraded):")
    platform.syncer.stop()
    print(f"  processed {processed_delta(platform, 10):7.1f} MB in 10 min")
    platform.syncer.start()
    print("  -> tasks unaffected; only config changes pause\n")

    print("Task Service down (Task Management degraded):")
    platform.task_service.available = False
    print(f"  processed {processed_delta(platform, 10):7.1f} MB in 10 min")
    platform.task_service.available = True
    print("  -> managers serve from cached snapshots\n")

    print("Auto Scaler down (Resource Management degraded):")
    platform.scaler.stop()
    print(f"  processed {processed_delta(platform, 10):7.1f} MB in 10 min")
    platform.scaler.start()
    print("  -> no resizing, but the data plane is untouched\n")

    print("Job admission halted (degraded, not dead):")
    platform.job_service.admitting = False
    try:
        platform.provision(JobSpec(job_id="new/job", input_category="x"))
    except Exception as exc:  # noqa: BLE001 — demo output
        print(f"  provision rejected as expected: {exc}")
    print(f"  processed {processed_delta(platform, 10):7.1f} MB in 10 min")
    platform.job_service.admitting = True


if __name__ == "__main__":
    main()
